(* E7 — Section 3.3: garbage collection and wear leveling.
   Shape to reproduce: write amplification grows with flash utilization;
   cost-benefit victim selection beats greedy at high utilization under a
   skewed rewrite mix (the LFS result the paper leans on); wear-leveling
   policies order none < dynamic < static in erase-count evenness, evener
   wear extrapolates to proportionally longer device life, and without
   leveling an accelerated-endurance device starts retiring segments while
   a leveled one still has headroom. *)
open Sim

let make ?(buffer_blocks = 64) ?(segment_sectors = 32) ~flash_kib ~wear ~cleaner
    ~endurance () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks:4 ~endurance_override:endurance
         ~size_bytes:(flash_kib * Units.kib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(2 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.wear;
      cleaner;
      segment_sectors;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
      max_flush_batch = 64;
      flush_spacing = Time.span_ms 20.0;
      selector = Common.selector;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

(* Fill to [utilization], then rewrite.  Two patterns:
   - [`Zipf]: popularity-skewed rewrites over every block — the mixed-age,
     mixed-utilization regime segment cleaning faces (cleaner experiment);
   - [`Hot_cold]: 90% of the data is never written again (installed
     programs, archives) and pins its segments, while a small hot set takes
     all the writes — the regime that separates wear-leveling policies. *)
let churn ~engine ~manager ~utilization ~rounds ~writes_per_round ~pattern ~seed =
  let capacity = Storage.Manager.capacity_blocks manager in
  let live_target = int_of_float (float_of_int capacity *. utilization) in
  let blocks = Array.init live_target (fun _ -> Storage.Manager.alloc manager) in
  Array.iter (fun b -> Storage.Manager.load_cold manager b) blocks;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 60.0));
  Storage.Manager.reset_traffic manager;
  let rng = Rng.create ~seed in
  let zipf = Distribution.Zipf.create ~n:live_target ~s:1.0 in
  let nhot = max 8 (live_target / 10) in
  let pick () =
    match pattern with
    | `Zipf -> blocks.(Distribution.Zipf.sample zipf rng)
    | `Hot_cold -> blocks.(Rng.int rng nhot)
  in
  for _ = 1 to rounds do
    for _ = 1 to writes_per_round do
      ignore (Storage.Manager.write_block manager (pick ()))
    done;
    Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0))
  done;
  ignore (Storage.Manager.flush_all manager)

let rounds n = if Common.quick then n / 4 else n

(* The grids below are embarrassingly parallel: every cell builds its own
   engine, manager, and RNG from constants, so the cells run on the Domain
   pool and only the rendering stays sequential.  Cell order (hence output)
   is identical at any job count. *)

let cleaner_table () =
  let t =
    Table.create ~title:"cleaner policy vs flash utilization (zipf rewrites)"
      ~columns:
        [
          ("utilization", Table.Right);
          ("policy", Table.Left);
          ("write amplification", Table.Right);
          ("cleanings", Table.Right);
          ("blocks copied", Table.Right);
          ("max erases", Table.Right);
        ]
  in
  let utilizations = [ 0.70; 0.80; 0.90 ] in
  let policies = [ Storage.Cleaner.Greedy; Storage.Cleaner.Cost_benefit ] in
  (* Counters come from the probe registry: churn's reset_traffic clears
     this worker domain's probes after the fill phase, so the snapshot
     taken inside the work item holds exactly this cell's rewrite traffic
     (identical values to Manager.stats — the CI snapshot pins them). *)
  let cells =
    Pool.run_map
      (fun (utilization, cleaner) ->
        let engine, manager =
          make ~flash_kib:1024 ~wear:Storage.Wear.Dynamic ~cleaner
            ~endurance:1_000_000 ()
        in
        churn ~engine ~manager ~utilization ~rounds:(rounds 400) ~writes_per_round:128
          ~pattern:`Zipf ~seed:71;
        (utilization, cleaner, Probe.snapshot (),
         Storage.Manager.wear_evenness manager))
      (List.concat_map
         (fun u -> List.map (fun c -> (u, c)) policies)
         utilizations)
  in
  List.iteri
    (fun i (utilization, cleaner, snap, e) ->
      let c name = Probe.Snapshot.counter_value snap name in
      let flushed = c "storage.manager.blocks_flushed" in
      let cleaned = c "storage.manager.blocks_cleaned" in
      let wa =
        Storage.Cleaner.write_amplification
          ~blocks_written:(flushed + cleaned) ~blocks_flushed:flushed
      in
      let tag =
        Printf.sprintf "u%d_%s"
          (int_of_float (100.0 *. utilization))
          (Storage.Cleaner.policy_name cleaner)
      in
      Common.put_metric ("e7_wa_" ^ tag) wa;
      Common.put_metric ("e7_cleanings_" ^ tag)
        (float_of_int (c "storage.manager.clean_ops"));
      Common.put_metric ("e7_max_erases_" ^ tag)
        (float_of_int e.Storage.Wear.max_erases);
      Table.add_row t
        [
          Table.cell_pct utilization;
          Storage.Cleaner.policy_name cleaner;
          Printf.sprintf "%.3f" wa;
          Table.cell_i (c "storage.manager.clean_ops");
          Table.cell_i cleaned;
          Table.cell_i e.Storage.Wear.max_erases;
        ];
      if (i + 1) mod List.length policies = 0 then Table.add_rule t)
    cells;
  Table.print t

let wear_table () =
  let t =
    Table.create ~title:"wear-leveling policy (85% full, pinned cold + hot set, 512KB flash)"
      ~columns:
        [
          ("policy", Table.Left);
          ("min erases", Table.Right);
          ("max erases", Table.Right);
          ("stddev", Table.Right);
          ("skew (max/mean)", Table.Right);
          ("relative lifetime", Table.Right);
        ]
  in
  let cells =
    Pool.run_map
      (fun wear ->
        let engine, manager =
          make ~flash_kib:512 ~wear ~cleaner:Storage.Cleaner.Cost_benefit
            ~endurance:1_000_000 ()
        in
        churn ~engine ~manager ~utilization:0.85 ~rounds:(rounds 600)
          ~writes_per_round:96 ~pattern:`Hot_cold ~seed:72;
        let e = Storage.Manager.wear_evenness manager in
        let stats = Storage.Manager.stats manager in
        let flash = Storage.Manager.flash manager in
        let elapsed = Time.diff (Engine.now engine) Time.zero in
        (wear, e, Ssmc.Lifetime.of_run ~flash ~stats ~evenness:e ~elapsed))
      [ Storage.Wear.None_; Storage.Wear.Dynamic;
        Storage.Wear.Static { spread_threshold = 12 } ]
  in
  let baseline =
    match cells with (_, _, lifetime) :: _ -> lifetime | [] -> assert false
  in
  List.iter
    (fun (wear, e, lifetime) ->
      let tag = Storage.Wear.policy_name wear in
      Common.put_metric ("e7_even_min_" ^ tag) (float_of_int e.Storage.Wear.min_erases);
      Common.put_metric ("e7_even_max_" ^ tag) (float_of_int e.Storage.Wear.max_erases);
      Common.put_metric ("e7_even_stddev_" ^ tag) e.Storage.Wear.stddev_erases;
      Common.put_metric ("e7_life_rel_" ^ tag) (lifetime /. baseline);
      Table.add_row t
        [
          Storage.Wear.policy_name wear;
          Table.cell_i e.Storage.Wear.min_erases;
          Table.cell_i e.Storage.Wear.max_erases;
          Printf.sprintf "%.1f" e.Storage.Wear.stddev_erases;
          Printf.sprintf "%.2f"
            (float_of_int e.Storage.Wear.max_erases
            /. Float.max 1e-9 e.Storage.Wear.mean_erases);
          Printf.sprintf "%.2fx" (lifetime /. baseline);
        ])
    cells;
  Table.print t

let wearout_demo () =
  (* Accelerated endurance: run each device to death (out of space from
     retired segments) and compare how much writing it sustained. *)
  let endurance = if Common.quick then 50 else 120 in
  let threshold = endurance / 10 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "write until wear-out (endurance = %d cycles, 256KB flash, 80%% full)" endurance)
      ~columns:
        [
          ("policy", Table.Left);
          ("data written before death", Table.Right);
          ("relative life", Table.Right);
          ("retired segments", Table.Right);
          ("bad sectors", Table.Right);
        ]
  in
  let cells =
    Pool.run_map
      (fun wear ->
        let engine, manager =
          make ~buffer_blocks:8 ~flash_kib:256 ~wear
            ~cleaner:Storage.Cleaner.Cost_benefit ~endurance ()
        in
        (try
           churn ~engine ~manager ~utilization:0.8 ~rounds:100_000 ~writes_per_round:96
             ~pattern:`Hot_cold ~seed:73
         with Storage.Manager.Out_of_space -> ());
        (wear, Storage.Manager.stats manager,
         Device.Flash.bad_sectors (Storage.Manager.flash manager)))
      [ Storage.Wear.None_; Storage.Wear.Dynamic;
        Storage.Wear.Static { spread_threshold = threshold } ]
  in
  let baseline =
    match cells with
    | (_, stats, _) :: _ -> float_of_int (512 * stats.Storage.Manager.blocks_flushed)
    | [] -> assert false
  in
  List.iter
    (fun (wear, stats, bad_sectors) ->
      let written = float_of_int (512 * stats.Storage.Manager.blocks_flushed) in
      let tag = Storage.Wear.policy_name wear in
      Common.put_metric ("e7_wearout_flushed_" ^ tag)
        (float_of_int stats.Storage.Manager.blocks_flushed);
      Common.put_metric ("e7_wearout_retired_" ^ tag)
        (float_of_int stats.Storage.Manager.retired_segments);
      Table.add_row t
        [
          Storage.Wear.policy_name wear;
          Table.cell_bytes (512 * stats.Storage.Manager.blocks_flushed);
          Printf.sprintf "%.2fx" (written /. baseline);
          Table.cell_i stats.Storage.Manager.retired_segments;
          Table.cell_i bad_sectors;
        ])
    cells;
  Table.print t

let segment_size_table () =
  (* The cleaning/erase unit itself: small segments approximate the
     paper's 512B-sector flash (cheap, surgical cleaning); large ones
     model the big erase blocks later NAND standardized on (better
     bandwidth, more copying per cleaning). *)
  let t =
    Table.create ~title:"segment (erase-unit) size at 75% utilization"
      ~columns:
        [
          ("segment", Table.Right);
          ("write amplification", Table.Right);
          ("cleanings", Table.Right);
          ("erases", Table.Right);
          ("bank busy per cleaning", Table.Right);
        ]
  in
  let cells =
    Pool.run_map
      (fun segment_sectors ->
        let engine, manager =
          make ~segment_sectors ~flash_kib:2048 ~wear:Storage.Wear.Dynamic
            ~cleaner:Storage.Cleaner.Cost_benefit ~endurance:1_000_000 ()
        in
        churn ~engine ~manager ~utilization:0.75 ~rounds:(rounds 200)
          ~writes_per_round:128 ~pattern:`Zipf ~seed:74;
        (segment_sectors, Storage.Manager.stats manager,
         Device.Flash.erases (Storage.Manager.flash manager)))
      [ 8; 32; 128 ]
  in
  List.iter
    (fun (segment_sectors, stats, erases) ->
      (* A cleaning erases the whole victim: that long, uninterruptible
         bank occupancy is what a concurrent reader of the same bank eats. *)
      let erase_burst =
        Time.span_scale (Device.Specs.intel_flash.Device.Specs.f_erase)
          (float_of_int segment_sectors)
      in
      Common.put_metric
        (Printf.sprintf "e7_segsize_wa_%d" segment_sectors)
        stats.Storage.Manager.write_amplification;
      Table.add_row t
        [
          Table.cell_bytes (segment_sectors * 512);
          Printf.sprintf "%.3f" stats.Storage.Manager.write_amplification;
          Table.cell_i stats.Storage.Manager.cleanings;
          Table.cell_i erases;
          Table.cell_span erase_burst;
        ])
    cells;
  Table.print t

let run () =
  Common.section "E7: garbage collection and wear leveling (Section 3.3)";
  cleaner_table ();
  wear_table ();
  wearout_demo ();
  segment_size_table ()
