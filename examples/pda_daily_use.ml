(* A day in the life of a solid-state personal information manager:
   the pim workload, battery accounting, a mid-day power scare, and why
   Section 3.1 says battery-backed DRAM can hold file data safely.

     dune exec examples/pda_daily_use.exe *)

open Sim

let () =
  (* A small PDA: 2MB DRAM, 10MB flash, a 2.5Wh battery (palmtop-sized). *)
  let cfg =
    Ssmc.Config.solid_state ~name:"pda" ~dram_mb:2 ~flash_mb:10 ~battery_wh:2.5 ()
  in
  let machine = Ssmc.Machine.create cfg in
  (* Eight hours of trace streams through the machine as it is generated —
     the whole day never sits in memory at once. *)
  let trace =
    Trace.Synth.generate_seq Trace.Workloads.pim ~rng:(Rng.create ~seed:11)
      ~duration:(Time.span_s (8.0 *. 3600.0))
  in
  Fmt.pr "Preloading the address book, calendar and notes (%d files)...@."
    (List.length trace.Trace.Synth.stream_initial_files);
  Ssmc.Machine.preload machine trace.Trace.Synth.stream_initial_files;

  Fmt.pr "Running 8 hours of organizer use...@.";
  let result = Ssmc.Machine.run_seq machine trace.Trace.Synth.seq in
  Fmt.pr "@.%a@.@." Ssmc.Machine.pp_result result;

  let battery = Ssmc.Machine.battery machine in
  let dram = Ssmc.Machine.dram machine in
  Fmt.pr "Battery after the working day: %.1f%%@."
    (100.0 *. Device.Battery.fraction_remaining battery);

  (* How long would the machine hold its memory if left in a drawer? *)
  let holdup = Ssmc.Recovery.dram_holdup ~dram ~battery in
  Fmt.pr
    "Idle retention: the primary battery preserves DRAM for ~%.0f more days;@.\
     the lithium backup alone would hold it ~%.0f hours during a battery swap.@.@."
    holdup.Ssmc.Recovery.primary_days holdup.Ssmc.Recovery.backup_hours;

  (* The user jots a note, then the power scare: what would a sudden
     failure lose right now, with the note still in the write buffer? *)
  let memfs = Option.get (Ssmc.Machine.memfs machine) in
  (match Fs.Memfs.create memfs "/data/new-note" with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "create note: %a" Fs.Fs_error.pp e);
  (match Fs.Memfs.write memfs "/data/new-note" ~offset:0 ~bytes:2048 with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "write note: %a" Fs.Fs_error.pp e);
  let manager = Option.get (Ssmc.Machine.manager machine) in
  let report =
    Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true
  in
  Fmt.pr "If the primary battery were yanked right now: %a@." Ssmc.Recovery.pp_outcome
    report;

  (* The OS also keeps its hot recovery state — session info, the ARP
     cache, undo history — in a Baker-style recovery box: checksummed
     battery-backed DRAM it can trust after an untimely crash. *)
  let box = Ssmc.Recovery_box.create () in
  Ssmc.Recovery_box.put box ~key:"session" ~bytes:256;
  Ssmc.Recovery_box.put box ~key:"undo-history" ~bytes:1024;
  Ssmc.Recovery_box.put box ~key:"pen-calibration" ~bytes:64;
  Ssmc.Recovery_box.crash box ~rng:(Rng.create ~seed:12) ~corruption_rate:0.6;
  let recovered = Ssmc.Recovery_box.recover box in
  Fmt.pr "@.An untimely crash corrupts memory at random; the recovery box checks@.\
          checksums and salvages what it can: %a@."
    Ssmc.Recovery_box.pp_recovery recovered;

  (* Drain everything and look again: this is the failure the paper says
     flash must guard against. *)
  Device.Battery.drain battery ~joules:1e9;
  let report2 =
    Ssmc.Recovery.power_failure ~manager ~battery ~dram_battery_backed:true
  in
  Fmt.pr "After every battery is exhausted: %a@." Ssmc.Recovery.pp_outcome report2;
  Fmt.pr
    "@.Everything flushed to flash survives any power failure; only data still in@.\
     the DRAM write buffer is at risk, and only once both batteries are gone.@."
