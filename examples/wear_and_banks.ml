(* Section 3.3's two placement policies, demonstrated directly against the
   storage manager: static wear leveling evening out erase counts, and
   bank partitioning keeping reads fast while writes stream.

     dune exec examples/wear_and_banks.exe *)

open Sim

let build ~wear ~banking =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks:4 ~endurance_override:100_000
         ~size_bytes:(2 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(2 * Units.mib) ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.wear;
      banking;
      (* A small, quickly-expiring buffer so the write stream actually
         reaches flash and exercises cleaning and wear. *)
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 32;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

let hammer ~engine ~manager ~minutes ~cold_fraction ~writes_per_s =
  (* Mostly cold data, a small hot set taking all the writes. *)
  let capacity = Storage.Manager.capacity_blocks manager in
  let ncold = int_of_float (float_of_int capacity *. cold_fraction) in
  let cold = Array.init ncold (fun _ -> Storage.Manager.alloc manager) in
  Array.iter (fun b -> Storage.Manager.load_cold manager b) cold;
  let hot = Array.init 128 (fun _ -> Storage.Manager.alloc manager) in
  let rng = Rng.create ~seed:5 in
  for _ = 1 to minutes * 60 do
    for _ = 1 to writes_per_s do
      ignore (Storage.Manager.write_block manager (Rng.choose rng hot))
    done;
    Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 1.0))
  done;
  cold

let () =
  Fmt.pr "== wear leveling ==@.";
  List.iter
    (fun wear ->
      let engine, manager = build ~wear ~banking:Storage.Banks.Unified in
      ignore (hammer ~engine ~manager ~minutes:8 ~cold_fraction:0.8 ~writes_per_s:64);
      let e = Storage.Manager.wear_evenness manager in
      Fmt.pr "  %-12s erase counts: min=%-3d max=%-3d stddev=%.1f@."
        (Storage.Wear.policy_name wear)
        e.Storage.Wear.min_erases e.Storage.Wear.max_erases e.Storage.Wear.stddev_erases)
    [ Storage.Wear.None_; Storage.Wear.Dynamic;
      Storage.Wear.Static { spread_threshold = 3 } ];
  Fmt.pr
    "  (static leveling relocates cold data so every sector shares the erase load)@.@.";

  Fmt.pr "== bank partitioning ==@.";
  List.iter
    (fun banking ->
      let engine, manager = build ~wear:Storage.Wear.Dynamic ~banking in
      let cold = hammer ~engine ~manager ~minutes:2 ~cold_fraction:0.4 ~writes_per_s:32 in
      (* Sample cold reads while the write stream's flushes continue. *)
      let rng = Rng.create ~seed:6 in
      let lat = Stat.Summary.create () in
      for _ = 1 to 500 do
        Engine.run_until engine (Time.add (Engine.now engine) (Time.span_ms 20.0));
        ignore (Storage.Manager.write_block manager (Storage.Manager.alloc manager));
        Stat.Summary.observe lat
          (Time.span_to_us (Storage.Manager.read_block manager (Rng.choose rng cold)))
      done;
      Fmt.pr "  %-16s cold-read latency: mean=%.0fus max=%.0fus@."
        (Storage.Banks.policy_name banking)
        (Stat.Summary.mean lat)
        (Option.value ~default:0.0 (Stat.Summary.max lat)))
    [ Storage.Banks.Unified; Storage.Banks.Partitioned { write_banks = 1 } ];
  Fmt.pr "  (reads of read-mostly banks rarely wait behind a 5ms program or erase)@."
