(* ssmc_sim: run a workload against a simulated mobile computer.

     dune exec bin/ssmc_sim.exe -- --workload engineering --minutes 10
     dune exec bin/ssmc_sim.exe -- --machine conventional --workload pim
     dune exec bin/ssmc_sim.exe -- --trace mytrace.txt *)
open Sim
open Cmdliner

(* Fleet mode: N heterogeneous devices streamed through the pool in
   bounded memory (Ssmc.Fleet).  Prints the fleet report plus one
   machine-parsable line -- devices/s and the process's peak heap -- that
   CI's bounded-memory check greps for. *)
let run_fleet ~devices ~shard ~faults_per_device ~duration ~seed ~metrics_json
    ~verbose =
  let spec =
    Ssmc.Fleet.spec ~devices ~shard ~base_seed:seed ~duration
      ~faults_per_device ()
  in
  (match Ssmc.Fleet.validate spec with
  | Ok () -> ()
  | Error m ->
    Fmt.epr "--fleet: %s@." m;
    exit 2);
  let t0 = Unix.gettimeofday () in
  let on_shard ~done_devices ~total =
    if verbose then Fmt.epr "fleet: %d/%d devices@." done_devices total
  in
  let report = Ssmc.Fleet.run ~on_shard spec in
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "@[<v>%a@]@." Ssmc.Fleet.pp_report report;
  (match metrics_json with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Json.to_string
             (Json.Obj
                [
                  ("devices", Json.int report.Ssmc.Fleet.devices);
                  ("metrics", Probe.Snapshot.to_json report.Ssmc.Fleet.probes);
                ]));
        Out_channel.output_char oc '\n');
    Fmt.pr "wrote metrics JSON to %s@." path);
  let peak_heap_kw = (Gc.quick_stat ()).Gc.top_heap_words / 1000 in
  Fmt.pr "fleet-wall: devices_per_s=%.2f wall_s=%.2f peak_heap_kw=%d@."
    (if wall > 0.0 then float_of_int devices /. wall else Float.infinity)
    wall peak_heap_kw

let run_simulation machine_kind workload trace_file minutes seed flash_mb dram_mb
    buffer_kb nbanks cards strip_size parity diff_log partitioned wear backup_wh jobs
    replicate metrics_json trace_out fault_after fault_kind fleet fleet_shard
    fleet_faults verbose debug =
  if debug then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  if cards < 1 then begin
    Fmt.epr "--cards needs a positive count, got %d@." cards;
    exit 2
  end;
  if strip_size < 1 then begin
    Fmt.epr "--strip-size needs a positive block count, got %d@." strip_size;
    exit 2
  end;
  if cards > 1 && machine_kind = `Conventional then begin
    Fmt.epr "--cards requires the solid-state machine@.";
    exit 2
  end;
  if parity && cards < 2 then begin
    Fmt.epr "--parity needs at least 2 cards (one data + one parity)@.";
    exit 2
  end;
  (match jobs with
  | Some j when j < 1 ->
    Fmt.epr "--jobs needs a positive count@.";
    exit 2
  | _ -> Option.iter Pool.set_default_jobs jobs);
  if replicate < 1 then begin
    Fmt.epr "--replicate needs a positive count@.";
    exit 2
  end;
  if fault_after <> [] && machine_kind = `Conventional then begin
    Fmt.epr "--fault-after requires the solid-state machine@.";
    exit 2
  end;
  (match List.find_opt (fun s -> s < 0.0) fault_after with
  | Some s ->
    Fmt.epr "--fault-after needs a non-negative time, got %g@." s;
    exit 2
  | None -> ());
  if backup_wh < 0.0 then begin
    Fmt.epr "--backup-wh needs a non-negative capacity, got %g@." backup_wh;
    exit 2
  end;
  (* Multi-card runs read the per-card busy/traffic labels back out of the
     probe registry for the utilization table below, so metrics go on. *)
  Probe.set_metrics (metrics_json <> None || trace_out <> None || cards > 1);
  Probe.set_timeline (trace_out <> None);
  (match fleet with
  | Some devices ->
    if devices < 1 then begin
      Fmt.epr "--fleet needs a positive device count@.";
      exit 2
    end;
    if fleet_shard < 1 then begin
      Fmt.epr "--fleet-shard needs a positive count@.";
      exit 2
    end;
    if fleet_faults < 0 then begin
      Fmt.epr "--fleet-faults needs a non-negative count@.";
      exit 2
    end;
    run_fleet ~devices ~shard:fleet_shard ~faults_per_device:fleet_faults
      ~duration:(Time.span_s (60.0 *. minutes))
      ~seed ~metrics_json ~verbose;
    exit 0
  | None -> ());
  let faults =
    List.map
      (fun s -> { Fault.kind = fault_kind; after = Time.span_s s })
      fault_after
  in
  let profile =
    match Trace.Workloads.find workload with
    | Some p -> p
    | None ->
      Fmt.epr "unknown workload %S; available: %a@." workload
        Fmt.(list ~sep:comma string)
        (List.map (fun p -> p.Trace.Synth.name) Trace.Workloads.all);
      exit 2
  in
  let duration = Time.span_s (60.0 *. minutes) in
  (* Two streaming passes, so the trace never has to fit in memory: the
     first validates and computes the preload set and summary, the second
     drives the machine.  A generated workload is simply regenerated for
     the second pass — generation is deterministic in the seed. *)
  (* [setup ~seed] yields that seed's preload set and replay function, so a
     single run and a multi-seed replication share one code path.  For a
     trace file the records are fixed and every replica re-reads the file
     (each on its own channel); a generated workload is regenerated per
     seed — generation is deterministic in the seed. *)
  let summary, setup =
    match trace_file with
    | Some path ->
      let inits = ref [] in
      let summary =
        try
          In_channel.with_open_text path (fun ic ->
              Trace.Stats.summarize_seq
                (Trace.Format_io.read_seq
                   ~on_init:(fun (file, size) -> inits := (file, size) :: !inits)
                   ic))
        with Failure msg | Sys_error msg ->
          Fmt.epr "cannot read trace %s: %s@." path msg;
          exit 2
      in
      let initial_files = List.rev !inits in
      ( summary,
        fun ~seed:_ ->
          ( initial_files,
            fun machine ->
              In_channel.with_open_text path (fun ic ->
                  Ssmc.Machine.run_seq ~faults machine (Trace.Format_io.read_seq ic)) ) )
    | None ->
      let stream ~seed =
        Trace.Synth.generate_seq profile ~rng:(Rng.create ~seed) ~duration
      in
      let summary = Trace.Stats.summarize_seq (stream ~seed).Trace.Synth.seq in
      ( summary,
        fun ~seed ->
          ( (stream ~seed).Trace.Synth.stream_initial_files,
            fun machine ->
              Ssmc.Machine.run_seq ~faults machine (stream ~seed).Trace.Synth.seq ) )
  in
  let cfg_for seed =
    match machine_kind with
    | `Solid_state ->
      let banking =
        if partitioned then Storage.Banks.Partitioned { write_banks = 1 }
        else Storage.Banks.Unified
      in
      let manager =
        {
          Storage.Manager.default_config with
          Storage.Manager.banking;
          wear;
          buffer =
            {
              Storage.Write_buffer.default_config with
              Storage.Write_buffer.capacity_blocks = buffer_kb * 1024 / 512;
            };
          diff_log =
            (if diff_log then Some Storage.Diff_log.default_config else None);
        }
      in
      let striping =
        if parity then
          Storage.Striping.Parity { strip_blocks = strip_size; rotate = true }
        else Storage.Striping.Round_robin { strip_blocks = strip_size }
      in
      Ssmc.Config.solid_state ~flash_mb ~dram_mb ~nbanks ~manager ~cards ~striping
        ~backup_wh ~seed ()
    | `Conventional -> Ssmc.Config.conventional ~dram_mb ~seed ()
  in
  (* Per-replica probe capture.  Machine.preload resets this domain's probe
     state, and a pool worker runs its items sequentially, so the snapshot
     taken right after replay holds exactly this replica's activity — at
     any --jobs.  Captures land in a mutex-guarded table and are merged in
     seed order at the end, so the totals are job-count invariant. *)
  let captures_mu = Mutex.create () in
  let metric_snaps = ref [] in
  let trace_events = ref [] in
  let capturing = metrics_json <> None || trace_out <> None in
  let run_one ~seed:run_seed =
    let machine = Ssmc.Machine.create (cfg_for run_seed) in
    let initial_files, replay = setup ~seed:run_seed in
    Ssmc.Machine.preload machine initial_files;
    let result = replay machine in
    if capturing then begin
      let snap = Probe.snapshot () in
      (* The timeline is reported for the base seed only: replicas replay
         the same workload shape, and one coherent timeline is what a
         Perfetto view needs. *)
      let events =
        if trace_out <> None && run_seed = seed then Probe.Timeline.events ()
        else []
      in
      Mutex.lock captures_mu;
      metric_snaps := (run_seed, snap) :: !metric_snaps;
      if events <> [] then trace_events := events;
      Mutex.unlock captures_mu
    end;
    (machine, result)
  in
  let write_json_file path doc =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Json.to_string doc);
        Out_channel.output_char oc '\n')
  in
  let emit_captures () =
    (match metrics_json with
    | None -> ()
    | Some path ->
      let snaps =
        List.sort (fun (a, _) (b, _) -> compare a b) !metric_snaps
      in
      let merged =
        List.fold_left
          (fun acc (_, s) -> Probe.Snapshot.merge acc s)
          Probe.Snapshot.empty snaps
      in
      let doc =
        Json.Obj
          [
            ("seeds", Json.List (List.map (fun (s, _) -> Json.int s) snaps));
            ("metrics", Probe.Snapshot.to_json merged);
          ]
      in
      write_json_file path doc;
      Fmt.pr "wrote metrics JSON to %s@." path);
    match trace_out with
    | None -> ()
    | Some path ->
      write_json_file path (Probe.Timeline.to_chrome_json !trace_events);
      Fmt.pr "wrote Chrome trace (%d events) to %s@."
        (List.length !trace_events) path
  in
  Fmt.pr "machine: %s | workload: %s (%a)@."
    (match machine_kind with `Solid_state -> "solid-state" | `Conventional -> "conventional")
    workload Trace.Stats.pp_summary summary;
  if replicate = 1 then begin
    let machine, result = run_one ~seed in
    Fmt.pr "%a@." Ssmc.Machine.pp_result result;
    (match result.Ssmc.Machine.manager_stats with
    | Some stats when verbose ->
      Fmt.pr "storage manager: %a@." Storage.Manager.pp_stats stats
    | Some stats ->
      Fmt.pr "write traffic reduced by %.1f%%; flash lifetime estimate: %s@."
        (100.0 *. stats.Storage.Manager.write_reduction)
        (match result.Ssmc.Machine.lifetime_years with
        | Some y when Float.is_finite y -> Printf.sprintf "%.1f years" y
        | _ -> "unbounded")
    | None -> ());
    (match Ssmc.Machine.store machine with
    | Some store -> (
      match Storage.Store.diff_stats store with
      | Some d ->
        Fmt.pr
          "diff log: %d deltas (%d bytes) flushed, %d merges, %d reassembled \
           reads, %d live chains@."
          d.Storage.Diff_log.deltas_flushed d.Storage.Diff_log.delta_bytes_flushed
          d.Storage.Diff_log.merges d.Storage.Diff_log.reassembled_reads
          d.Storage.Diff_log.chains
      | None -> ())
    | None -> ());
    if verbose then begin
      match Ssmc.Machine.manager machine with
      | Some manager ->
        let e = Storage.Manager.wear_evenness manager in
        Fmt.pr "wear: min=%d max=%d stddev=%.1f@." e.Storage.Wear.min_erases
          e.Storage.Wear.max_erases e.Storage.Wear.stddev_erases
      | None -> ()
    end;
    (* Multi-card runs: per-card utilization (busy time over the run, from
       the per-card probe summaries) and wear, one row per card. *)
    match Ssmc.Machine.store machine with
    | Some (Storage.Store.Striped array) ->
      let snap = Probe.snapshot () in
      let summary_sum name =
        match Probe.Snapshot.find snap name with
        | Some (Probe.Snapshot.Summary { sum; _ }) -> sum
        | _ -> 0.0
      in
      let elapsed_us = Time.span_to_us result.Ssmc.Machine.elapsed in
      let t =
        Table.create
          ~title:
            (Fmt.str "per-card utilization and wear (%d cards, %a striping)"
               (Storage.Array.ncards array) Storage.Striping.pp_policy
               (Storage.Array.striping array))
          ~columns:
            [
              ("card", Table.Right);
              ("busy %", Table.Right);
              ("reads", Table.Right);
              ("writes", Table.Right);
              ("flushed", Table.Right);
              ("cleanings", Table.Right);
              ("erases min/max", Table.Right);
              ("wear stddev", Table.Right);
            ]
      in
      Stdlib.Array.iteri
        (fun i m ->
          let label metric = Storage.Banks.probe_label ~card:i metric in
          let counter name = Probe.Snapshot.counter_value snap (label name) in
          let busy_pct =
            if elapsed_us > 0.0 then
              100.0 *. summary_sum (label "busy_us") /. elapsed_us
            else 0.0
          in
          let e = Storage.Manager.wear_evenness m in
          Table.add_row t
            [
              Table.cell_i i;
              Table.cell_f ~decimals:1 busy_pct;
              Table.cell_i (counter "client_reads");
              Table.cell_i (counter "client_writes");
              Table.cell_i (counter "blocks_flushed");
              Table.cell_i (counter "clean_ops");
              Printf.sprintf "%d/%d" e.Storage.Wear.min_erases
                e.Storage.Wear.max_erases;
              Table.cell_f ~decimals:1 e.Storage.Wear.stddev_erases;
            ])
        (Storage.Store.managers (Storage.Store.Striped array));
      Table.print t;
      if Storage.Array.front_cache_capacity array > 0 then
        Fmt.pr "front cache: %d hits, %d misses@."
          (Storage.Array.front_cache_hits array)
          (Storage.Array.front_cache_misses array)
    | Some (Storage.Store.Single _) | None -> ()
  end
  else begin
    let seeds = List.init replicate (fun i -> seed + i) in
    Fmt.pr "replicating over %d seeds (%d..%d) on %d job%s@." replicate seed
      (seed + replicate - 1) (Pool.default_jobs ())
      (if Pool.default_jobs () = 1 then "" else "s");
    let rep =
      Ssmc.Machine.run_replicated ~seeds (fun ~seed -> snd (run_one ~seed))
    in
    if verbose then
      List.iter
        (fun (s, r) -> Fmt.pr "seed %d: %a@." s Ssmc.Machine.pp_result r)
        rep.Ssmc.Machine.runs;
    Fmt.pr "across seeds (mean ± 95%% CI):@.%a@." Ssmc.Machine.pp_replicated rep
  end;
  emit_captures ()

let wear_arg =
  let parse = function
    | "none" -> Ok Storage.Wear.None_
    | "dynamic" -> Ok Storage.Wear.Dynamic
    | "static" -> Ok (Storage.Wear.Static { spread_threshold = 16 })
    | s -> Error (`Msg (Printf.sprintf "unknown wear policy %S (none|dynamic|static)" s))
  in
  let print ppf p = Fmt.string ppf (Storage.Wear.policy_name p) in
  Arg.conv (parse, print)

let machine_arg =
  let parse = function
    | "solid" | "solid-state" -> Ok `Solid_state
    | "conventional" | "disk" -> Ok `Conventional
    | s -> Error (`Msg (Printf.sprintf "unknown machine %S (solid|conventional)" s))
  in
  let print ppf = function
    | `Solid_state -> Fmt.string ppf "solid"
    | `Conventional -> Fmt.string ppf "conventional"
  in
  Arg.conv (parse, print)

let cmd =
  let machine =
    Arg.(value & opt machine_arg `Solid_state & info [ "machine"; "m" ] ~docv:"KIND"
           ~doc:"Machine kind: solid (DRAM+flash) or conventional (DRAM+disk).")
  in
  let workload =
    Arg.(value & opt string "engineering" & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Synthetic workload profile (engineering, pim, compile, database).")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Replay a trace file instead of generating one.")
  in
  let minutes =
    Arg.(value & opt float 10.0 & info [ "minutes" ] ~docv:"MIN"
           ~doc:"Simulated duration of the generated workload.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let flash_mb =
    Arg.(value & opt int 20 & info [ "flash-mb" ] ~docv:"MB" ~doc:"Flash capacity.")
  in
  let dram_mb =
    Arg.(value & opt int 4 & info [ "dram-mb" ] ~docv:"MB" ~doc:"DRAM capacity.")
  in
  let buffer_kb =
    Arg.(value & opt int 1024 & info [ "buffer-kb" ] ~docv:"KB"
           ~doc:"DRAM write-buffer capacity (0 = write-through).")
  in
  let nbanks =
    Arg.(value & opt int 4 & info [ "banks" ] ~docv:"N" ~doc:"Flash banks.")
  in
  let cards =
    Arg.(value & opt int 1 & info [ "cards" ] ~docv:"N"
           ~doc:"Flash cards behind a striped array (--flash-mb and --banks are then \
                 per card).  1 mounts the storage manager directly; above 1 the run \
                 prints a per-card utilization/wear table.")
  in
  let strip_size =
    Arg.(value & opt int 4 & info [ "strip-size" ] ~docv:"BLOCKS"
           ~doc:"Round-robin strip size in blocks for the multi-card array; ignored \
                 with --cards 1.")
  in
  let parity =
    Arg.(value & flag & info [ "parity" ]
           ~doc:"Protect the multi-card array with rotating parity strips (RAID-5 \
                 shape): every write also updates its row's parity block on another \
                 card, and the array survives losing any single card.  Requires \
                 --cards 2 or more.")
  in
  let diff_log =
    Arg.(value & flag & info [ "diff-log" ]
           ~doc:"Page-differential logging: flushed overwrites program a small \
                 delta record against the block's durable base page instead of \
                 rewriting the whole page; reads reassemble the chain, and long \
                 chains merge back into a full page.  Trades read latency for \
                 write traffic.")
  in
  let partitioned =
    Arg.(value & flag & info [ "partitioned" ]
           ~doc:"Partition flash banks into write and read-mostly sets.")
  in
  let wear =
    Arg.(value & opt wear_arg Storage.Wear.Dynamic & info [ "wear" ] ~docv:"POLICY"
           ~doc:"Wear-leveling policy: none, dynamic or static.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Domain pool size for replicated runs (default: the SSMC_JOBS \
                 environment variable or the machine's core count).  Never changes \
                 results, only wall-clock.")
  in
  let replicate =
    Arg.(value & opt int 1 & info [ "replicate" ] ~docv:"N"
           ~doc:"Run N seeds (seed, seed+1, ...) in parallel and report each headline \
                 metric as mean ± 95% confidence interval.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write the probe registry's merged metric totals as JSON.  With \
                 --replicate, per-seed snapshots are merged in seed order, so the \
                 totals are identical at any --jobs.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write an event timeline (op applies, flash programs/erases, cleaner \
                 passes, flush batches, faults, remounts) as Chrome trace_event JSON, \
                 loadable in Perfetto or about:tracing.")
  in
  let fault_after =
    Arg.(value & opt_all float [] & info [ "fault-after" ] ~docv:"SECONDS"
           ~doc:"Inject a fault (see --fault-kind) this many simulated seconds into \
                 the run (repeatable; solid-state machine only).")
  in
  let fault_kind =
    let parse = function
      | "power" -> Ok Fault.Power_failure
      | "swap" -> Ok Fault.Battery_swap
      | "depletion" -> Ok Fault.Battery_depletion
      | s -> Error (`Msg (Printf.sprintf "unknown fault kind %S (power|swap|depletion)" s))
    in
    let print ppf k = Fault.pp_kind ppf k in
    Arg.(value & opt (conv (parse, print)) Fault.Power_failure
         & info [ "fault-kind" ] ~docv:"KIND"
             ~doc:"What --fault-after injects: power (external power failure), swap \
                   (primary battery pulled), or depletion (primary dies abruptly).  \
                   Combine depletion with --backup-wh 0 for a cold restart.")
  in
  let backup_wh =
    Arg.(value & opt float 0.5 & info [ "backup-wh" ] ~docv:"WH"
           ~doc:"Backup (lithium) battery capacity in watt-hours; 0 removes it, so \
                 faults that outlast the primary cold-restart the machine.")
  in
  let fleet =
    Arg.(value & opt (some int) None & info [ "fleet" ] ~docv:"N"
           ~doc:"Fleet mode: simulate N heterogeneous devices (hardware variants, \
                 per-device workloads and seeds) streamed through the Domain pool \
                 in bounded memory, and print population-level aggregates.  \
                 --minutes is the per-device trace duration; --seed, --jobs apply.")
  in
  let fleet_shard =
    Arg.(value & opt int 256 & info [ "fleet-shard" ] ~docv:"N"
           ~doc:"Devices constructed and live per batch in fleet mode: peak memory \
                 scales with the shard (times jobs), never with --fleet.  Does not \
                 change results.")
  in
  let fleet_faults =
    Arg.(value & opt int 0 & info [ "fleet-faults" ] ~docv:"N"
           ~doc:"In fleet mode, inject N random power events into every device's \
                 run (kinds drawn uniformly; offsets uniform over the duration).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Extra statistics.") in
  let debug =
    Arg.(value & flag & info [ "debug" ]
           ~doc:"Log storage-manager internals (cleaning, wear-out, flushes).")
  in
  let term =
    Term.(
      const run_simulation $ machine $ workload $ trace_file $ minutes $ seed $ flash_mb
      $ dram_mb $ buffer_kb $ nbanks $ cards $ strip_size $ parity $ diff_log
      $ partitioned $ wear $ backup_wh $ jobs $ replicate $ metrics_json $ trace_out
      $ fault_after $ fault_kind $ fleet $ fleet_shard $ fleet_faults $ verbose $ debug)
  in
  Cmd.v
    (Cmd.info "ssmc_sim" ~doc:"Simulate a solid-state (or conventional) mobile computer")
    term

let () = exit (Cmd.eval cmd)
