(* tracegen: generate a synthetic file-system trace to a text file.

     dune exec bin/tracegen.exe -- -w compile --minutes 5 -o compile.trace *)
open Sim
open Cmdliner

let generate workload minutes seed output analyze =
  let profile =
    match Trace.Workloads.find workload with
    | Some p -> p
    | None ->
      Fmt.epr "unknown workload %S; available: %a@." workload
        Fmt.(list ~sep:comma string)
        (List.map (fun p -> p.Trace.Synth.name) Trace.Workloads.all);
      exit 2
  in
  let duration = Time.span_s (60.0 *. minutes) in
  if not analyze then begin
    (* Stream records straight to the output as they are generated: memory
       stays constant however long the requested trace is. *)
    let t = Trace.Synth.generate_seq profile ~rng:(Rng.create ~seed) ~duration in
    match output with
    | Some path ->
      let n =
        Trace.Format_io.write_file_seq
          ~initial_files:t.Trace.Synth.stream_initial_files path t.Trace.Synth.seq
      in
      Fmt.pr "wrote %d records (and %d preload directives) to %s@." n
        (List.length t.Trace.Synth.stream_initial_files)
        path
    | None ->
      List.iter
        (fun (file, size) -> print_endline (Trace.Format_io.init_directive file size))
        t.Trace.Synth.stream_initial_files;
      ignore (Trace.Format_io.write_seq stdout t.Trace.Synth.seq)
  end
  else begin
    (* Analysis (calibration, write death) is inherently multi-pass, so the
       trace is materialized; output is identical to the streamed path. *)
    let t = Trace.Synth.generate profile ~rng:(Rng.create ~seed) ~duration in
    (match output with
    | Some path ->
      Trace.Format_io.write_file ~initial_files:t.Trace.Synth.initial_files path
        t.Trace.Synth.records;
      Fmt.pr "wrote %d records (and %d preload directives) to %s@."
        (List.length t.Trace.Synth.records)
        (List.length t.Trace.Synth.initial_files)
        path
    | None ->
      List.iter
        (fun (file, size) -> print_endline (Trace.Format_io.init_directive file size))
        t.Trace.Synth.initial_files;
      Trace.Format_io.write_channel stdout t.Trace.Synth.records);
    let summary = Trace.Stats.summarize t.Trace.Synth.records in
    Fmt.epr "summary: %a@." Trace.Stats.pp_summary summary;
    Fmt.epr "calibration:@.%a@." Trace.Calibration.pp_report (Trace.Calibration.analyze t);
    List.iter
      (fun (range, v, ok) ->
        Fmt.epr "  %s: %.2f in [%.2f, %.2f] %s@." range.Trace.Calibration.what v
          range.Trace.Calibration.lo range.Trace.Calibration.hi
          (if ok then "ok" else "OUT OF RANGE"))
      (Trace.Calibration.evaluate (Trace.Calibration.analyze t));
    List.iter
      (fun window_s ->
        let death =
          Trace.Stats.write_death t.Trace.Synth.records
            ~window:(Time.span_s window_s)
        in
        Fmt.epr "write death within %.0fs: %.1f%% of %d written bytes@." window_s
          (100.0 *. death.Trace.Stats.dead_fraction)
          death.Trace.Stats.written_bytes)
      [ 5.0; 30.0; 120.0 ]
  end

let cmd =
  let workload =
    Arg.(value & opt string "engineering" & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Profile: engineering, pim, compile, database.")
  in
  let minutes =
    Arg.(value & opt float 10.0 & info [ "minutes" ] ~docv:"MIN" ~doc:"Trace duration.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Output file (stdout if omitted).")
  in
  let analyze =
    Arg.(value & flag & info [ "analyze"; "a" ]
           ~doc:"Print summary and write-death statistics to stderr.")
  in
  let term = Term.(const generate $ workload $ minutes $ seed $ output $ analyze) in
  Cmd.v (Cmd.info "tracegen" ~doc:"Generate synthetic file-system traces") term

let () = exit (Cmd.eval cmd)
