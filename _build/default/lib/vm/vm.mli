(** The virtual-memory system (Section 3.2).

    In the paper's organization, virtual memory exists mainly for protection
    — DRAM is plentiful relative to the working set, and flash is directly
    addressable.  This module provides:

    - address spaces whose pages map DRAM frames {e or} flash-resident
      storage-manager blocks in place (mapped files, execute-in-place);
    - copy-on-write from flash: writing a mapped flash page sends the
      affected block through the storage manager's DRAM write buffer,
      deferring the erase/write penalty exactly as Section 3.1 describes;
    - zero-fill-on-demand anonymous memory backed by a bounded pool of DRAM
      frames with clock replacement;
    - an optional swap target (disk, or flash through the storage manager)
      for the conventional demand-paging baseline. *)

exception Out_of_memory
(** Anonymous memory exceeded the frame pool and there is no swap target. *)

type swap_target =
  | Swap_disk of Device.Disk.t  (** Conventional paging to disk. *)
  | Swap_flash  (** Page to flash through the storage manager. *)
  | No_swap  (** Running out of frames raises {!Out_of_memory}. *)

type config = {
  page_bytes : int;
  dram_frames : int;  (** Anonymous-memory frame pool. *)
  swap : swap_target;
}

val default_config : config
(** 4 KB pages, 1024 frames (4 MB), no swap. *)

type t

val create : config -> engine:Sim.Engine.t -> manager:Storage.Manager.t -> t
val new_space : t -> Addr_space.t
val config : t -> config
val manager : t -> Storage.Manager.t

val map_file :
  t ->
  Addr_space.t ->
  kind:Addr_space.kind ->
  prot:Page_table.prot ->
  cow:bool ->
  blocks:Storage.Manager.block array ->
  bytes:int ->
  Addr_space.region * Sim.Time.span
(** Map storage-manager blocks into the address space in place — no copy
    into DRAM.  The span is the page-table setup cost.  With [cow] set,
    writes are permitted and routed block-by-block through the storage
    manager's write buffer.
    @raise Invalid_argument if [blocks] cannot cover [bytes]. *)

val map_anon :
  t ->
  Addr_space.t ->
  kind:Addr_space.kind ->
  prot:Page_table.prot ->
  bytes:int ->
  Addr_space.region * Sim.Time.span
(** Zero-fill-on-demand anonymous memory. *)

val unmap_region : t -> Addr_space.t -> Addr_space.region -> unit
(** Release the region's frames and swap slots (mapped file blocks are the
    file system's to free). *)

val clone_space : t -> Addr_space.t -> Addr_space.t * Sim.Time.span
(** Fork: a new address space with identical regions and mappings.
    Flash-backed pages (text, mapped files) are shared in place; resident
    and swapped anonymous pages share their frame or slot copy-on-write —
    both sides lose write permission and the first write to a shared page
    copies it privately.  The span is the page-table duplication cost.
    Protection is per-space: revoking rights in one space never affects
    the other — the isolation Section 3.2 says virtual memory is for. *)

type fault = Page_table.fault = Not_mapped | Protection

val touch :
  t ->
  Addr_space.t ->
  addr:int ->
  access:[ `Read | `Write | `Exec ] ->
  ?bytes:int ->
  unit ->
  (Sim.Time.span, fault) result
(** One memory access of [bytes] (default 64 — a cache line) at [addr],
    faulting in / copying / swapping as needed.  The span is everything the
    access waited for.
    @raise Out_of_memory per {!swap_target}. *)

(** {1 Statistics} *)

type stats = {
  faults : int;  (** All page faults (fills, COWs, swap-ins). *)
  zero_fills : int;
  cow_writes : int;  (** Writes routed to the write buffer by COW. *)
  swap_ins : int;
  swap_outs : int;
  frames_in_use : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
