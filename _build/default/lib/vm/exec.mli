(** Program execution: execute-in-place vs load-and-run (Section 3.2).

    "Programs residing in flash memory can be executed in place ...  There
    is no need to load their code segment into primary storage before
    execution, again saving both the storage needed for duplicate copies
    and the time needed to perform the copies."  (The HP OmniBook shipped
    bundled software exactly this way.)

    This module models a program as a text segment installed in flash plus
    an anonymous data segment, and charges device-model costs for the three
    launch strategies the paper contrasts:

    - {e Execute_in_place}: map the flash-resident text; instruction
      fetches read flash directly.
    - {e Copy_to_dram}: read the whole text out of flash and place it in
      anonymous DRAM pages; fetches then run at DRAM speed.
    - {e Load_from_disk}: the conventional machine — read the text from
      the disk image, place it in DRAM. *)

type program = {
  prog_name : string;
  text_bytes : int;
  data_bytes : int;  (** Initial data + bss the program touches. *)
}

val install_text : Storage.Manager.t -> program -> Storage.Manager.block array
(** Put the program's text into flash via the cold-data path, as bundled
    software shipped in a memory card would be. *)

type strategy =
  | Execute_in_place
  | Copy_to_dram
  | Load_from_disk of Device.Disk.t

val strategy_name : strategy -> string

type launched = {
  space : Addr_space.t;
  text : Addr_space.region;
  data : Addr_space.region;
  launch_latency : Sim.Time.span;
  text_dram_bytes : int;  (** DRAM duplicated to hold text (0 under XIP). *)
}

val launch :
  Vm.t -> program -> text_blocks:Storage.Manager.block array -> strategy -> launched
(** Build an address space and get the program runnable.
    @raise Invalid_argument if [text_blocks] does not cover the text. *)

val run :
  Vm.t -> launched -> rng:Sim.Rng.t -> fetches:int -> Sim.Time.span
(** Execute [fetches] instruction-cache-line fetches over the text with
    0.9-sequential locality, plus a data access every few fetches; returns
    total simulated time. *)
