lib/vm/vm.mli: Addr_space Device Format Page_table Sim Storage
