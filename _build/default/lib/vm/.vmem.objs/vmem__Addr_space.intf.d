lib/vm/addr_space.mli: Format Page_table
