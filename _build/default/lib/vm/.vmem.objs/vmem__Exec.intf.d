lib/vm/exec.mli: Addr_space Device Sim Storage Vm
