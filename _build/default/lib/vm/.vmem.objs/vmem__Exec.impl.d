lib/vm/exec.ml: Addr_space Array Device Page_table Rng Sim Storage Time Units Vm
