lib/vm/vm.ml: Addr_space Array Device Engine Fmt Fun Hashtbl List Option Page_table Sim Storage Time
