lib/vm/page_table.ml: Fmt Hashtbl Storage
