lib/vm/addr_space.ml: Fmt List Page_table Sim
