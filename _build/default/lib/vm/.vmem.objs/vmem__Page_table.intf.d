lib/vm/page_table.mli: Format Storage
