(** Page tables for a single-level 64-bit address space.

    With DRAM and flash both byte-addressable, the paper's machine runs
    everything out of one flat address space; virtual memory exists
    "primarily to provide protection across multiple address spaces, rather
    than to expand capacity" (Section 3.2).  A page-table entry therefore
    names either DRAM frames or flash-resident storage-manager blocks as its
    backing — mapping flash directly is what makes execute-in-place and
    map-in-place files possible.

    The table is sparse (hashed on virtual page number) and pure
    bookkeeping; fault semantics live in {!Vm}. *)

type prot = { read : bool; write : bool; exec : bool }

val prot_r : prot
val prot_rw : prot
val prot_rx : prot
val prot_rwx : prot
val pp_prot : Format.formatter -> prot -> unit

type backing =
  | Dram_frame of int  (** A physical DRAM frame number. *)
  | Flash_blocks of Storage.Manager.block array
      (** Storage-manager blocks mapped in place (XIP / mapped file). *)
  | Swapped of int  (** Evicted to a swap slot. *)
  | Untouched  (** Valid mapping, no storage yet (zero-fill on demand). *)

type pte = {
  mutable backing : backing;
  mutable prot : prot;
  mutable cow : bool;  (** Copy to DRAM on first write. *)
  mutable referenced : bool;  (** For clock replacement. *)
}

type t

val create : unit -> t
val map : t -> vpn:int -> prot:prot -> cow:bool -> backing -> unit
(** @raise Invalid_argument if the page is already mapped. *)

val unmap : t -> vpn:int -> pte option
(** Remove and return the entry, if any. *)

val find : t -> vpn:int -> pte option
val protect : t -> vpn:int -> prot -> bool
(** False if unmapped. *)

type fault = Not_mapped | Protection

val translate : t -> vpn:int -> access:[ `Read | `Write | `Exec ] -> (pte, fault) result
(** Check protection and return the entry, setting its referenced bit. *)

val mapped_pages : t -> int
val iter : t -> (int -> pte -> unit) -> unit
