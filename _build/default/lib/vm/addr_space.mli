(** A process address space: a page table plus a region registry.

    Regions carve up the flat 64-bit space: program text, data, stack, and
    mapped files.  Virtual addresses are allocated by a simple bump
    allocator — with 64 bits there is never a reason to reuse them, one of
    the simplifications the single-level store buys. *)

type kind = Text | Data | Stack | Heap | Mapped_file

val pp_kind : Format.formatter -> kind -> unit

type region = {
  kind : kind;
  base : int;  (** First virtual address (page-aligned). *)
  pages : int;
}

type t

val create : page_bytes:int -> t
(** @raise Invalid_argument unless [page_bytes] is a positive power of
    two. *)

val page_bytes : t -> int
val page_table : t -> Page_table.t

val add_region : t -> kind:kind -> bytes:int -> region
(** Reserve virtual space for [bytes] (rounded up to whole pages); no
    pages are mapped yet. *)

val regions : t -> region list
(** In allocation order. *)

val region_of_addr : t -> int -> region option
val vpn_of_addr : t -> int -> int
val addr_of_vpn : t -> int -> int
val page_of_region : region -> page_bytes:int -> int -> int
(** The vpn of the [i]-th page of a region.
    @raise Invalid_argument if out of bounds. *)
