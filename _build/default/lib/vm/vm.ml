open Sim

exception Out_of_memory

type swap_target = Swap_disk of Device.Disk.t | Swap_flash | No_swap

type config = { page_bytes : int; dram_frames : int; swap : swap_target }

let default_config = { page_bytes = 4096; dram_frames = 1024; swap = No_swap }

type t = {
  cfg : config;
  engine : Engine.t;
  manager : Storage.Manager.t;
  (* A frame may be shared by several PTEs after clone_space (fork):
     copy-on-write resolves the sharing at the first write. *)
  frames : Page_table.pte list array;  (* frame -> sharing anon ptes *)
  mutable free_frames : int list;
  mutable hand : int;
  swap_slots : (int, Storage.Manager.block array) Hashtbl.t;  (* Swap_flash *)
  swap_sharers : (int, Page_table.pte list) Hashtbl.t;  (* slot -> ptes *)
  mutable next_swap_slot : int;
  mutable c_faults : int;
  mutable c_zero_fills : int;
  mutable c_cow_writes : int;
  mutable c_swap_ins : int;
  mutable c_swap_outs : int;
}

let create cfg ~engine ~manager =
  if cfg.page_bytes <= 0 || cfg.page_bytes mod Storage.Manager.block_bytes manager <> 0
  then invalid_arg "Vm.create: page size must be a multiple of the block size";
  if cfg.dram_frames <= 0 then invalid_arg "Vm.create: dram_frames <= 0";
  {
    cfg;
    engine;
    manager;
    frames = Array.make cfg.dram_frames [];
    free_frames = List.init cfg.dram_frames Fun.id;
    hand = 0;
    swap_slots = Hashtbl.create 64;
    swap_sharers = Hashtbl.create 64;
    next_swap_slot = 0;
    c_faults = 0;
    c_zero_fills = 0;
    c_cow_writes = 0;
    c_swap_ins = 0;
    c_swap_outs = 0;
  }

let config t = t.cfg
let manager t = t.manager
let new_space t = Addr_space.create ~page_bytes:t.cfg.page_bytes
let dram t = Storage.Manager.dram t.manager
let blocks_per_page t = t.cfg.page_bytes / Storage.Manager.block_bytes t.manager

(* Page-table updates are ordinary DRAM writes of one entry. *)
let pte_update_span t = Device.Dram.write (dram t) ~bytes:8

(* --- Swap ------------------------------------------------------------------- *)

let sectors_per_page t = t.cfg.page_bytes / 512

let swap_out_page t ~cursor =
  t.c_swap_outs <- t.c_swap_outs + 1;
  let slot = t.next_swap_slot in
  t.next_swap_slot <- slot + 1;
  (match t.cfg.swap with
  | No_swap -> raise Out_of_memory
  | Swap_disk disk ->
    let capacity_slots = Device.Disk.capacity_bytes disk / t.cfg.page_bytes in
    let lba = slot mod capacity_slots * sectors_per_page t in
    let op =
      Device.Disk.access disk ~now:!cursor ~lba ~bytes:t.cfg.page_bytes ~kind:`Write
    in
    cursor := op.Device.Disk.finish
  | Swap_flash ->
    let blocks =
      Array.init (blocks_per_page t) (fun _ -> Storage.Manager.alloc t.manager)
    in
    Array.iter
      (fun b -> cursor := Time.add !cursor (Storage.Manager.write_block t.manager b))
      blocks;
    Hashtbl.replace t.swap_slots slot blocks);
  slot

let swap_in_page t ~cursor slot =
  t.c_swap_ins <- t.c_swap_ins + 1;
  match t.cfg.swap with
  | No_swap -> assert false (* nothing can be swapped out without a target *)
  | Swap_disk disk ->
    let capacity_slots = Device.Disk.capacity_bytes disk / t.cfg.page_bytes in
    let lba = slot mod capacity_slots * sectors_per_page t in
    let op =
      Device.Disk.access disk ~now:!cursor ~lba ~bytes:t.cfg.page_bytes ~kind:`Read
    in
    cursor := op.Device.Disk.finish
  | Swap_flash -> begin
    match Hashtbl.find_opt t.swap_slots slot with
    | None -> invalid_arg "Vm: unknown swap slot"
    | Some blocks ->
      Array.iter
        (fun b ->
          cursor := Time.add !cursor (Storage.Manager.read_block t.manager b);
          Storage.Manager.free_block t.manager b)
        blocks;
      Hashtbl.remove t.swap_slots slot
  end

(* --- Frame pool -------------------------------------------------------------- *)

let rec alloc_frame t ~cursor =
  match t.free_frames with
  | frame :: rest ->
    t.free_frames <- rest;
    frame
  | [] ->
    (* Clock replacement over the anonymous frames; a frame is referenced
       if any of its sharers touched it since the last sweep. *)
    let n = Array.length t.frames in
    let victim = ref None in
    let scanned = ref 0 in
    while !victim = None && !scanned < 2 * n do
      (match t.frames.(t.hand) with
      | [] -> (* free but not on the list: shouldn't happen *) ()
      | sharers ->
        if List.exists (fun pte -> pte.Page_table.referenced) sharers then
          List.iter (fun pte -> pte.Page_table.referenced <- false) sharers
        else victim := Some t.hand);
      if !victim = None then t.hand <- (t.hand + 1) mod n;
      incr scanned
    done;
    (match !victim with
    | None -> raise Out_of_memory
    | Some frame -> begin
      match t.frames.(frame) with
      | [] -> assert false
      | sharers ->
        (* One swap write covers every sharer. *)
        let slot = swap_out_page t ~cursor in
        List.iter
          (fun pte ->
            pte.Page_table.backing <- Page_table.Swapped slot;
            cursor := Time.add !cursor (pte_update_span t))
          sharers;
        Hashtbl.replace t.swap_sharers slot sharers;
        t.frames.(frame) <- [];
        t.free_frames <- frame :: t.free_frames
    end);
    alloc_frame t ~cursor

let attach_frame ?(sharers = []) t ~cursor pte =
  let frame = alloc_frame t ~cursor in
  let all = pte :: List.filter (fun p -> p != pte) sharers in
  t.frames.(frame) <- all;
  List.iter
    (fun p ->
      p.Page_table.backing <- Page_table.Dram_frame frame;
      cursor := Time.add !cursor (pte_update_span t))
    all;
  frame

let release_backing t pte =
  match pte.Page_table.backing with
  | Page_table.Dram_frame frame -> begin
    match List.filter (fun p -> p != pte) t.frames.(frame) with
    | [] ->
      t.frames.(frame) <- [];
      t.free_frames <- frame :: t.free_frames
    | rest -> t.frames.(frame) <- rest
  end
  | Page_table.Swapped slot -> begin
    let rest =
      List.filter (fun p -> p != pte)
        (Option.value (Hashtbl.find_opt t.swap_sharers slot) ~default:[ pte ])
    in
    if rest = [] then begin
      Hashtbl.remove t.swap_sharers slot;
      match Hashtbl.find_opt t.swap_slots slot with
      | Some blocks ->
        Array.iter (Storage.Manager.free_block t.manager) blocks;
        Hashtbl.remove t.swap_slots slot
      | None -> ()
    end
    else Hashtbl.replace t.swap_sharers slot rest
  end
  | Page_table.Flash_blocks _ | Page_table.Untouched -> ()

(* --- Mapping ------------------------------------------------------------------ *)

let map_file t space ~kind ~prot ~cow ~blocks ~bytes =
  let bs = Storage.Manager.block_bytes t.manager in
  if Array.length blocks * bs < bytes then
    invalid_arg "Vm.map_file: not enough blocks for the mapping";
  let region = Addr_space.add_region space ~kind ~bytes in
  let table = Addr_space.page_table space in
  let per_page = blocks_per_page t in
  let span = ref Time.span_zero in
  for i = 0 to region.Addr_space.pages - 1 do
    let vpn = Addr_space.page_of_region region ~page_bytes:t.cfg.page_bytes i in
    let lo = i * per_page in
    let hi = min (Array.length blocks) (lo + per_page) in
    let page_blocks = Array.sub blocks lo (max 0 (hi - lo)) in
    Page_table.map table ~vpn ~prot ~cow (Page_table.Flash_blocks page_blocks);
    span := Time.span_add !span (pte_update_span t)
  done;
  (region, !span)

let map_anon t space ~kind ~prot ~bytes =
  let region = Addr_space.add_region space ~kind ~bytes in
  let table = Addr_space.page_table space in
  let span = ref Time.span_zero in
  for i = 0 to region.Addr_space.pages - 1 do
    let vpn = Addr_space.page_of_region region ~page_bytes:t.cfg.page_bytes i in
    Page_table.map table ~vpn ~prot ~cow:false Page_table.Untouched;
    span := Time.span_add !span (pte_update_span t)
  done;
  (region, !span)

let unmap_region t space region =
  let table = Addr_space.page_table space in
  for i = 0 to region.Addr_space.pages - 1 do
    let vpn = Addr_space.page_of_region region ~page_bytes:t.cfg.page_bytes i in
    match Page_table.unmap table ~vpn with
    | Some pte -> release_backing t pte
    | None -> ()
  done

(* --- Access -------------------------------------------------------------------- *)

type fault = Page_table.fault = Not_mapped | Protection

let block_of_addr t blocks addr =
  let bs = Storage.Manager.block_bytes t.manager in
  let index = addr mod t.cfg.page_bytes / bs in
  if index < Array.length blocks then Some blocks.(index) else None

(* Apply [f] to every mapped block the access covers (an access can span
   several storage blocks within the page), threading the time cursor.
   Bytes falling past the mapping's blocks are zero pages: DRAM-speed. *)
let over_covered_blocks t blocks ~addr ~bytes ~cursor ~f =
  let bs = Storage.Manager.block_bytes t.manager in
  let first = addr mod t.cfg.page_bytes / bs in
  let rec go index remaining =
    if remaining > 0 then begin
      let n = min bs remaining in
      if index < Array.length blocks then cursor := f ~at:!cursor ~bytes:n blocks.(index)
      else cursor := Time.add !cursor (Device.Dram.read (dram t) ~bytes:n);
      go (index + 1) (remaining - n)
    end
  in
  go first bytes

let touch t space ~addr ~access ?(bytes = 64) () =
  let table = Addr_space.page_table space in
  let vpn = Addr_space.vpn_of_addr space addr in
  let now = Engine.now t.engine in
  let cursor = ref now in
  let serve pte =
    match pte.Page_table.backing with
    | Page_table.Dram_frame _ ->
      let span =
        match access with
        | `Read | `Exec -> Device.Dram.read (dram t) ~bytes
        | `Write -> Device.Dram.write (dram t) ~bytes
      in
      cursor := Time.add !cursor span;
      Ok ()
    | Page_table.Flash_blocks blocks ->
      (match access with
      | `Read | `Exec ->
        over_covered_blocks t blocks ~addr ~bytes ~cursor ~f:(fun ~at ~bytes b ->
            Storage.Manager.read_block_at ~bytes t.manager ~at b)
      | `Write ->
        (* Copy-on-write: the affected blocks go to the DRAM write buffer;
           flash is updated only if they survive there. *)
        over_covered_blocks t blocks ~addr ~bytes ~cursor ~f:(fun ~at ~bytes b ->
            ignore bytes;
            t.c_cow_writes <- t.c_cow_writes + 1;
            Storage.Manager.write_block_at t.manager ~at b));
      Ok ()
    | Page_table.Untouched ->
      t.c_faults <- t.c_faults + 1;
      t.c_zero_fills <- t.c_zero_fills + 1;
      ignore (attach_frame t ~cursor pte);
      (* Zero-filling writes the whole frame. *)
      cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes:t.cfg.page_bytes);
      Error `Retry
    | Page_table.Swapped slot ->
      t.c_faults <- t.c_faults + 1;
      let sharers =
        Option.value (Hashtbl.find_opt t.swap_sharers slot) ~default:[ pte ]
      in
      Hashtbl.remove t.swap_sharers slot;
      swap_in_page t ~cursor slot;
      ignore (attach_frame ~sharers t ~cursor pte);
      cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes:t.cfg.page_bytes);
      Error `Retry
  in
  let rec go attempts =
    if attempts > 3 then assert false (* fill/swap-in converges in one retry *)
    else begin
      match Page_table.translate table ~vpn ~access with
      | Error Page_table.Protection -> begin
        (* A write to a COW mapping is legal; everything else is a fault. *)
        match (access, Page_table.find table ~vpn) with
        | `Write, Some pte when pte.Page_table.cow -> begin
          match serve_cow pte with
          | Ok () -> Ok (Time.diff !cursor now)
          | Error `Retry -> go (attempts + 1)
        end
        | _ -> Error Protection
      end
      | Error Page_table.Not_mapped -> Error Not_mapped
      | Ok pte -> begin
        match serve pte with
        | Ok () -> Ok (Time.diff !cursor now)
        | Error `Retry -> go (attempts + 1)
      end
    end
  and serve_cow pte =
    match pte.Page_table.backing with
    | Page_table.Flash_blocks blocks -> begin
      match block_of_addr t blocks addr with
      | Some _ ->
        over_covered_blocks t blocks ~addr ~bytes ~cursor ~f:(fun ~at ~bytes b ->
            ignore bytes;
            t.c_cow_writes <- t.c_cow_writes + 1;
            Storage.Manager.write_block_at t.manager ~at b);
        Ok ()
      | None ->
        cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes);
        Ok ()
    end
    | Page_table.Dram_frame frame -> begin
      (* A forked anonymous page: copy it privately on the first write —
         or simply reclaim write permission if we are the last sharer. *)
      match t.frames.(frame) with
      | [ _ ] | [] ->
        pte.Page_table.prot <- { pte.Page_table.prot with Page_table.write = true };
        pte.Page_table.cow <- false;
        cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes);
        Ok ()
      | sharers ->
        t.c_cow_writes <- t.c_cow_writes + 1;
        t.frames.(frame) <- List.filter (fun p -> p != pte) sharers;
        (* Read the shared page, place the private copy. *)
        cursor := Time.add !cursor (Device.Dram.read (dram t) ~bytes:t.cfg.page_bytes);
        ignore (attach_frame t ~cursor pte);
        cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes:t.cfg.page_bytes);
        pte.Page_table.prot <- { pte.Page_table.prot with Page_table.write = true };
        pte.Page_table.cow <- false;
        cursor := Time.add !cursor (Device.Dram.write (dram t) ~bytes);
        Ok ()
    end
    | Page_table.Swapped _ ->
      (* Bring the shared page in first, then resolve the write. *)
      (match serve pte with Ok () -> () | Error `Retry -> ());
      Error `Retry
    | Page_table.Untouched ->
      (* Nothing shared yet: fill privately and allow the write. *)
      pte.Page_table.prot <- { pte.Page_table.prot with Page_table.write = true };
      pte.Page_table.cow <- false;
      (match serve pte with Ok () -> Ok () | Error `Retry -> Error `Retry)
  in
  go 0

(* --- Fork ------------------------------------------------------------------------- *)

let clone_space t space =
  let child = Addr_space.create ~page_bytes:t.cfg.page_bytes in
  (* Regions replicate in order, so virtual addresses coincide. *)
  List.iter
    (fun r ->
      ignore
        (Addr_space.add_region child ~kind:r.Addr_space.kind
           ~bytes:(r.Addr_space.pages * t.cfg.page_bytes)))
    (Addr_space.regions space);
  let parent_table = Addr_space.page_table space in
  let child_table = Addr_space.page_table child in
  let span = ref Time.span_zero in
  Page_table.iter parent_table (fun vpn pte ->
      span := Time.span_add !span (pte_update_span t);
      match pte.Page_table.backing with
      | Page_table.Flash_blocks blocks ->
        (* Mapped files stay shared (both sides read in place; COW writes
           already go through the storage manager). *)
        Page_table.map child_table ~vpn ~prot:pte.Page_table.prot
          ~cow:pte.Page_table.cow (Page_table.Flash_blocks blocks)
      | Page_table.Untouched ->
        Page_table.map child_table ~vpn ~prot:pte.Page_table.prot
          ~cow:pte.Page_table.cow Page_table.Untouched
      | Page_table.Dram_frame frame ->
        let cow = pte.Page_table.cow || pte.Page_table.prot.Page_table.write in
        if pte.Page_table.prot.Page_table.write then
          pte.Page_table.prot <-
            { pte.Page_table.prot with Page_table.write = false };
        pte.Page_table.cow <- cow;
        Page_table.map child_table ~vpn ~prot:pte.Page_table.prot ~cow
          (Page_table.Dram_frame frame);
        (match Page_table.find child_table ~vpn with
        | Some cpte -> t.frames.(frame) <- cpte :: t.frames.(frame)
        | None -> assert false)
      | Page_table.Swapped slot ->
        let cow = pte.Page_table.cow || pte.Page_table.prot.Page_table.write in
        if pte.Page_table.prot.Page_table.write then
          pte.Page_table.prot <-
            { pte.Page_table.prot with Page_table.write = false };
        pte.Page_table.cow <- cow;
        Page_table.map child_table ~vpn ~prot:pte.Page_table.prot ~cow
          (Page_table.Swapped slot);
        (match Page_table.find child_table ~vpn with
        | Some cpte ->
          Hashtbl.replace t.swap_sharers slot
            (cpte :: Option.value (Hashtbl.find_opt t.swap_sharers slot) ~default:[ pte ])
        | None -> assert false));
  (child, !span)

(* --- Statistics ------------------------------------------------------------------ *)

type stats = {
  faults : int;
  zero_fills : int;
  cow_writes : int;
  swap_ins : int;
  swap_outs : int;
  frames_in_use : int;
}

let stats t =
  let in_use =
    Array.fold_left (fun acc f -> if f = [] then acc else acc + 1) 0 t.frames
  in
  {
    faults = t.c_faults;
    zero_fills = t.c_zero_fills;
    cow_writes = t.c_cow_writes;
    swap_ins = t.c_swap_ins;
    swap_outs = t.c_swap_outs;
    frames_in_use = in_use;
  }

let pp_stats ppf s =
  Fmt.pf ppf "faults=%d zero_fills=%d cow_writes=%d swap_in=%d swap_out=%d frames=%d"
    s.faults s.zero_fills s.cow_writes s.swap_ins s.swap_outs s.frames_in_use
