type kind = Text | Data | Stack | Heap | Mapped_file

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Text -> "text"
    | Data -> "data"
    | Stack -> "stack"
    | Heap -> "heap"
    | Mapped_file -> "mapped-file")

type region = { kind : kind; base : int; pages : int }

type t = {
  page_bytes : int;
  table : Page_table.t;
  mutable next_base : int;
  mutable regions : region list;  (* reversed *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~page_bytes =
  if not (is_power_of_two page_bytes) then
    invalid_arg "Addr_space.create: page size must be a positive power of two";
  {
    page_bytes;
    table = Page_table.create ();
    (* Leave page zero unmapped forever. *)
    next_base = page_bytes;
    regions = [];
  }

let page_bytes t = t.page_bytes
let page_table t = t.table

let add_region t ~kind ~bytes =
  if bytes < 0 then invalid_arg "Addr_space.add_region: negative size";
  let pages = max 1 (Sim.Units.ceil_div bytes t.page_bytes) in
  let region = { kind; base = t.next_base; pages } in
  t.next_base <- t.next_base + (pages * t.page_bytes);
  t.regions <- region :: t.regions;
  region

let regions t = List.rev t.regions

let region_of_addr t addr =
  List.find_opt
    (fun r -> addr >= r.base && addr < r.base + (r.pages * t.page_bytes))
    t.regions

let vpn_of_addr t addr = addr / t.page_bytes
let addr_of_vpn t vpn = vpn * t.page_bytes

let page_of_region region ~page_bytes i =
  if i < 0 || i >= region.pages then invalid_arg "Addr_space.page_of_region";
  (region.base / page_bytes) + i
