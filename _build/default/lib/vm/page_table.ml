type prot = { read : bool; write : bool; exec : bool }

let prot_r = { read = true; write = false; exec = false }
let prot_rw = { read = true; write = true; exec = false }
let prot_rx = { read = true; write = false; exec = true }
let prot_rwx = { read = true; write = true; exec = true }

let pp_prot ppf p =
  Fmt.pf ppf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')

type backing =
  | Dram_frame of int
  | Flash_blocks of Storage.Manager.block array
  | Swapped of int
  | Untouched

type pte = {
  mutable backing : backing;
  mutable prot : prot;
  mutable cow : bool;
  mutable referenced : bool;
}

type t = (int, pte) Hashtbl.t

let create () = Hashtbl.create 256

let map t ~vpn ~prot ~cow backing =
  if Hashtbl.mem t vpn then invalid_arg "Page_table.map: already mapped";
  Hashtbl.replace t vpn { backing; prot; cow; referenced = false }

let unmap t ~vpn =
  let pte = Hashtbl.find_opt t vpn in
  Hashtbl.remove t vpn;
  pte

let find t ~vpn = Hashtbl.find_opt t vpn

let protect t ~vpn prot =
  match Hashtbl.find_opt t vpn with
  | Some pte ->
    pte.prot <- prot;
    true
  | None -> false

type fault = Not_mapped | Protection

let translate t ~vpn ~access =
  match Hashtbl.find_opt t vpn with
  | None -> Error Not_mapped
  | Some pte ->
    let allowed =
      match access with
      | `Read -> pte.prot.read
      | `Write -> pte.prot.write
      | `Exec -> pte.prot.exec
    in
    if not allowed then Error Protection
    else begin
      pte.referenced <- true;
      Ok pte
    end

let mapped_pages t = Hashtbl.length t
let iter t f = Hashtbl.iter f t
