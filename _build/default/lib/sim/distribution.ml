type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }
  | Mixture of (float * t) list

(* Box–Muller; one draw per call keeps samplers stateless. *)
let standard_normal rng =
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec sample t rng =
  match t with
  | Constant v -> v
  | Uniform { lo; hi } -> lo +. Rng.float rng (hi -. lo)
  | Exponential { mean } -> -.mean *. log (1.0 -. Rng.unit_float rng)
  | Pareto { shape; scale } ->
    scale /. ((1.0 -. Rng.unit_float rng) ** (1.0 /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. standard_normal rng))
  | Mixture parts ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
    let x = Rng.float rng total in
    let rec pick acc = function
      | [] -> invalid_arg "Distribution.sample: empty mixture"
      | [ (_, d) ] -> sample d rng
      | (w, d) :: rest -> if x < acc +. w then sample d rng else pick (acc +. w) rest
    in
    pick 0.0 parts

let sample_int t rng =
  let v = sample t rng in
  if v <= 0.0 then 0 else int_of_float (Float.round v)

let rec mean = function
  | Constant v -> v
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean = m } -> m
  | Pareto { shape; scale } ->
    if shape <= 1.0 then infinity else shape *. scale /. (shape -. 1.0)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Mixture parts ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
    List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean d)) 0.0 parts

let lognormal_of_mean_p50 ~mean:m ~median =
  if m <= 0.0 || median <= 0.0 || m < median then
    invalid_arg "Distribution.lognormal_of_mean_p50";
  (* median = exp mu, mean = exp (mu + sigma^2/2). *)
  let mu = log median in
  let sigma = sqrt (2.0 *. (log m -. mu)) in
  Lognormal { mu; sigma }

let rec pp ppf = function
  | Constant v -> Fmt.pf ppf "const(%g)" v
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform[%g,%g)" lo hi
  | Exponential { mean } -> Fmt.pf ppf "exp(mean=%g)" mean
  | Pareto { shape; scale } -> Fmt.pf ppf "pareto(shape=%g,scale=%g)" shape scale
  | Lognormal { mu; sigma } -> Fmt.pf ppf "lognormal(mu=%g,sigma=%g)" mu sigma
  | Mixture parts ->
    Fmt.pf ppf "mix(%a)"
      (Fmt.list ~sep:Fmt.comma (fun ppf (w, d) -> Fmt.pf ppf "%g:%a" w pp d))
      parts

module Zipf = struct
  type dist = t
  type t = { n : int; cumulative : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create: n <= 0";
    if s < 0.0 then invalid_arg "Zipf.create: s < 0";
    let cumulative = Array.make n 0.0 in
    let acc = ref 0.0 in
    for rank = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (rank + 1) ** s));
      cumulative.(rank) <- !acc
    done;
    let total = !acc in
    for rank = 0 to n - 1 do
      cumulative.(rank) <- cumulative.(rank) /. total
    done;
    { n; cumulative }

  let n t = t.n

  let sample t rng =
    let x = Rng.unit_float rng in
    (* Binary search for the first cumulative weight >= x. *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cumulative.(mid) < x then go (mid + 1) hi else go lo mid
    in
    go 0 (t.n - 1)

  let probability t rank =
    if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank";
    if rank = 0 then t.cumulative.(0)
    else t.cumulative.(rank) -. t.cumulative.(rank - 1)
end
