lib/sim/units.ml:
