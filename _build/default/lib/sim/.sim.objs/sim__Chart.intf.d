lib/sim/chart.mli:
