lib/sim/rng.mli:
