lib/sim/distribution.ml: Array Float Fmt List Rng
