lib/sim/stat.ml: Array Float Fmt Stdlib
