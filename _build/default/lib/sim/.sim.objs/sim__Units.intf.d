lib/sim/units.mli:
