lib/sim/chart.ml: Buffer Float List Printf String
