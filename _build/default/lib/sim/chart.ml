let bars ?(width = 40) ~title ~unit series =
  let clamped = List.map (fun (l, v) -> (l, Float.max 0.0 v)) series in
  let peak = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 clamped in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 clamped
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("-- " ^ title ^ " --\n");
  List.iter
    (fun (label, v) ->
      let n =
        if peak <= 0.0 then 0
        else int_of_float (Float.round (v /. peak *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s%s %.4g%s\n" label_width label (String.make n '#')
           (String.make (width - n) ' ')
           v unit))
    clamped;
  Buffer.contents buf

let print_bars ?width ~title ~unit series =
  print_string (bars ?width ~title ~unit series);
  print_newline ()
