let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let of_kib n = n * kib
let of_mib n = n * mib
let to_mib n = float_of_int n /. float_of_int mib

let ceil_div a b =
  if b <= 0 then invalid_arg "Units.ceil_div";
  (a + b - 1) / b

let round_up n ~multiple =
  if multiple <= 0 then invalid_arg "Units.round_up";
  ceil_div n multiple * multiple
