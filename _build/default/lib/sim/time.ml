type t = int
type span = int

let zero = 0

let of_ns n =
  if n < 0 then invalid_arg "Time.of_ns: negative";
  n

let to_ns t = t

let span_ns n =
  if n < 0 then invalid_arg "Time.span_ns: negative";
  n

let span_us x = span_ns (int_of_float (Float.round (x *. 1e3)))
let span_ms x = span_ns (int_of_float (Float.round (x *. 1e6)))
let span_s x = span_ns (int_of_float (Float.round (x *. 1e9)))
let span_to_ns d = d
let span_to_us d = float_of_int d /. 1e3
let span_to_ms d = float_of_int d /. 1e6
let span_to_s d = float_of_int d /. 1e9
let add t d = t + d

let diff later earlier =
  if later < earlier then invalid_arg "Time.diff: later < earlier";
  later - earlier

let span_add a b = a + b

let span_scale d k =
  if k < 0.0 then invalid_arg "Time.span_scale: negative factor";
  int_of_float (Float.round (float_of_int d *. k))

let span_zero = 0
let max_span a b = Stdlib.max a b
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : int) b = Stdlib.( <= ) a b
let ( < ) (a : int) b = Stdlib.( < ) a b
let max = Stdlib.max
let min = Stdlib.min

(* Render with the largest unit that keeps the value >= 1. *)
let pp_ns ppf n =
  let f = float_of_int n in
  if n < 1_000 then Fmt.pf ppf "%dns" n
  else if n < 1_000_000 then Fmt.pf ppf "%.2fus" (f /. 1e3)
  else if n < 1_000_000_000 then Fmt.pf ppf "%.2fms" (f /. 1e6)
  else Fmt.pf ppf "%.3fs" (f /. 1e9)

let pp = pp_ns
let pp_span = pp_ns
