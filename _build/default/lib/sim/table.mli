(** Plain-text table rendering for experiment reports.

    Every experiment in [bench/] and every example prints its results through
    this module so output is uniform and machine-greppable. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** A horizontal separator between row groups. *)

val cell_f : ?decimals:int -> float -> string
(** Render a float compactly ([decimals] defaults to 2). *)

val cell_i : int -> string

val cell_pct : float -> string
(** Render a ratio in [\[0,1\]] as a percentage. *)

val cell_span : Time.span -> string
(** Render a duration with an adaptive unit. *)

val cell_bytes : int -> string
(** Render a byte count with an adaptive unit (B, KB, MB, GB). *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string], with a trailing newline. *)
