(** Byte-size constants and helpers shared across the simulator. *)

val kib : int
(** 1024 bytes. *)

val mib : int
(** 1024 KiB. *)

val gib : int
(** 1024 MiB. *)

val of_kib : int -> int
val of_mib : int -> int

val to_mib : int -> float
(** Bytes as a fractional MiB count. *)

val round_up : int -> multiple:int -> int
(** The least multiple of [multiple] that is [>= n].
    @raise Invalid_argument if [multiple <= 0]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded up.
    @raise Invalid_argument if [b <= 0]. *)
