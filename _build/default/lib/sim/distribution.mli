(** Probability distributions for workload synthesis.

    A distribution is a pure description; sampling requires an explicit
    {!Rng.t}.  The same description can therefore drive several independent
    streams, and descriptions can be compared and printed. *)

type t =
  | Constant of float  (** Always the same value. *)
  | Uniform of { lo : float; hi : float }  (** Uniform on [\[lo, hi)]. *)
  | Exponential of { mean : float }
  | Pareto of { shape : float; scale : float }
      (** Heavy-tailed; [scale] is the minimum value, [shape] > 0. *)
  | Lognormal of { mu : float; sigma : float }
      (** [exp] of a normal with parameters [mu], [sigma] (of the log). *)
  | Mixture of (float * t) list
      (** Weighted mixture; weights need not sum to one (normalized). *)

val sample : t -> Rng.t -> float
(** Draw one value.  All draws are non-negative for the distributions used in
    this repository provided their parameters are non-negative. *)

val sample_int : t -> Rng.t -> int
(** [sample] rounded to the nearest non-negative integer. *)

val mean : t -> float
(** Analytic mean.  For [Pareto] with [shape <= 1] the mean is infinite and
    [infinity] is returned. *)

val lognormal_of_mean_p50 : mean:float -> median:float -> t
(** The lognormal with the given mean and median — a convenient way to
    calibrate file-size distributions from published summary statistics.
    @raise Invalid_argument if [mean < median] or either is non-positive. *)

val pp : Format.formatter -> t -> unit

(** {1 Discrete popularity}

    Zipf-distributed ranks model skewed file popularity (a few hot files take
    most accesses). *)

module Zipf : sig
  type dist = t

  type t
  (** A Zipf sampler over ranks [0 .. n-1] with exponent [s], using a
      precomputed cumulative table (O(log n) per draw). *)

  val create : n:int -> s:float -> t
  (** @raise Invalid_argument if [n <= 0] or [s < 0]. *)

  val sample : t -> Rng.t -> int
  val n : t -> int

  val probability : t -> int -> float
  (** [probability z rank] is the probability mass of [rank]. *)
end
