(** Simulated time.

    All simulation components share a single notion of time: a non-negative
    number of nanoseconds since the start of the simulation, represented as a
    native [int].  On a 64-bit platform this covers roughly 146 years of
    simulated time, far beyond any experiment in this repository. *)

type t = private int
(** A point in simulated time, in nanoseconds since simulation start. *)

type span = private int
(** A duration, in nanoseconds.  Spans are non-negative. *)

val zero : t
(** The simulation epoch. *)

val of_ns : int -> t
(** [of_ns n] is the instant [n] nanoseconds after the epoch.
    @raise Invalid_argument if [n < 0]. *)

val to_ns : t -> int
(** Nanoseconds since the epoch. *)

val span_ns : int -> span
(** [span_ns n] is a duration of [n] nanoseconds.
    @raise Invalid_argument if [n < 0]. *)

val span_us : float -> span
(** Duration in microseconds (rounded to whole nanoseconds). *)

val span_ms : float -> span
(** Duration in milliseconds. *)

val span_s : float -> span
(** Duration in seconds. *)

val span_to_ns : span -> int
val span_to_us : span -> float
val span_to_ms : span -> float
val span_to_s : span -> float

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff later earlier] is the duration between two instants.
    @raise Invalid_argument if [later < earlier]. *)

val span_add : span -> span -> span
val span_scale : span -> float -> span
(** [span_scale d k] is [d] scaled by the non-negative factor [k]. *)

val span_zero : span
val max_span : span -> span -> span

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns, us, ms, s). *)

val pp_span : Format.formatter -> span -> unit
