type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let cell_f ?(decimals = 2) v =
  if Float.is_integer v && Float.abs v < 1e15 && decimals <= 2 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let cell_i = string_of_int
let cell_pct r = Printf.sprintf "%.1f%%" (100.0 *. r)

let cell_span d =
  let ns = Time.span_to_ns d in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.2fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.3fs" (float_of_int ns /. 1e9)

let cell_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1fKB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.1fMB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGB" (f /. (1024.0 *. 1024.0 *. 1024.0))

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = List.nth t.aligns i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  emit_cells t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit_cells c
      | Rule ->
        Buffer.add_string buf (String.make total_width '-');
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
