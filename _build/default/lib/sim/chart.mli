(** ASCII charts for experiment reports.

    A bar chart renders a labelled series as proportional bars — enough to
    see a knee or a plateau in terminal output without plotting tools. *)

val bars :
  ?width:int ->
  title:string ->
  unit:string ->
  (string * float) list ->
  string
(** [bars ~title ~unit series] renders each [(label, value)] as a bar
    scaled to the maximum value ([width] characters, default 40), with the
    numeric value and [unit] at the end.  Negative values are clamped to
    zero.  Returns the rendered block, newline-terminated. *)

val print_bars :
  ?width:int -> title:string -> unit:string -> (string * float) list -> unit
