(** The common file-system interface.

    Both file systems — the memory-resident {!Memfs} the paper advocates
    and the conventional disk-based {!Ffs} baseline — satisfy this
    signature, so experiments and examples can run the same workload over
    either.  Every operation reports the simulated latency the caller
    observed. *)

type span = Sim.Time.span

module type S = sig
  type t

  val name : t -> string

  val mkdir : t -> string -> (span, Fs_error.t) result
  val create : t -> string -> (span, Fs_error.t) result
  (** Create an empty regular file. *)

  val write : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  (** Write [bytes] at [offset], extending the file (and filling any gap)
      as needed. *)

  val read : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  (** Read up to [bytes]; reading past end-of-file reads less (charging
      only what was read) and reading at or past it reads nothing. *)

  val truncate : t -> string -> size:int -> (span, Fs_error.t) result

  val rename : t -> string -> string -> (span, Fs_error.t) result
  (** [rename t src dst] moves a file or directory.  [dst] must not exist;
      a directory cannot be moved into its own subtree. *)

  val unlink : t -> string -> (span, Fs_error.t) result
  val rmdir : t -> string -> (span, Fs_error.t) result
  val file_size : t -> string -> (int, Fs_error.t) result
  val exists : t -> string -> bool
  val readdir : t -> string -> (string list, Fs_error.t) result
  val sync : t -> span
  (** Push all buffered state to stable storage. *)
end

(** {1 Trace-record application}

    Runs a {!Trace} file id against an [S] by mapping ids to paths — the
    glue used by machine models and experiments. *)

val path_of_file_id : int -> string
(** ["/data/f<id>"]. *)
