(** LRU buffer cache for the disk file system.

    The conventional organization the paper contrasts against keeps a cache
    of disk blocks in DRAM: reads hit it or fault to disk; writes dirty it
    and are written back later (the update daemon) or on demand (eviction,
    sync).  The memory-resident file system needs none of this — which is
    exactly the comparison experiment E3 draws.

    This module is the pure replacement structure; device charging is the
    caller's job. *)

type t

val create : capacity_blocks:int -> t
(** @raise Invalid_argument if capacity is negative. *)

val capacity : t -> int
val size : t -> int

type lookup = Hit | Miss

val find : t -> key:int -> lookup
(** Probe for a block; a hit refreshes its recency. *)

val insert : t -> key:int -> dirty:bool -> int list
(** Make the block resident (MRU, with the given dirty state — an
    already-resident block keeps its dirty bit ORed).  Returns the dirty
    victims evicted to make room, which the caller must write back.  With
    zero capacity the block is not retained and, if dirty, is its own
    victim. *)

val mark_dirty : t -> key:int -> bool
(** Returns false if the block is not resident. *)

val is_dirty : t -> key:int -> bool
val contains : t -> key:int -> bool

val forget : t -> key:int -> unit
(** Drop a block without writeback (its file was deleted). *)

val take_dirty : t -> int list
(** All dirty blocks, oldest first; their dirty bits are cleared (they
    remain resident).  Used by sync and the update daemon. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
(** Dirty blocks returned by {!insert} evictions so far. *)
