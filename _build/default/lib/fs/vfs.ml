type span = Sim.Time.span

module type S = sig
  type t

  val name : t -> string
  val mkdir : t -> string -> (span, Fs_error.t) result
  val create : t -> string -> (span, Fs_error.t) result
  val write : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  val read : t -> string -> offset:int -> bytes:int -> (span, Fs_error.t) result
  val truncate : t -> string -> size:int -> (span, Fs_error.t) result
  val rename : t -> string -> string -> (span, Fs_error.t) result
  val unlink : t -> string -> (span, Fs_error.t) result
  val rmdir : t -> string -> (span, Fs_error.t) result
  val file_size : t -> string -> (int, Fs_error.t) result
  val exists : t -> string -> bool
  val readdir : t -> string -> (string list, Fs_error.t) result
  val sync : t -> span
end

let path_of_file_id id = Printf.sprintf "/data/f%d" id
