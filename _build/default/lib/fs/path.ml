type t = string list

let valid_name name =
  name <> "" && name <> "." && name <> ".." && not (String.contains name '/')

let parse s =
  if String.length s = 0 || s.[0] <> '/' then Error Fs_error.Einval
  else begin
    let components =
      String.split_on_char '/' s |> List.filter (fun c -> c <> "")
    in
    if List.for_all valid_name components then Ok components else Error Fs_error.Einval
  end

let to_string = function
  | [] -> "/"
  | components -> "/" ^ String.concat "/" components

let split_last t =
  match List.rev t with
  | [] -> None
  | last :: rev_parent -> Some (List.rev rev_parent, last)
