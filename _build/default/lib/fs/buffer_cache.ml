(* Doubly-linked LRU list threaded through a hash table. *)

type node = {
  key : int;
  mutable dirty : bool;
  mutable prev : node option;  (* toward MRU *)
  mutable next : node option;  (* toward LRU *)
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create ~capacity_blocks =
  if capacity_blocks < 0 then invalid_arg "Buffer_cache.create: negative capacity";
  {
    capacity = capacity_blocks;
    table = Hashtbl.create (max 16 capacity_blocks);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

type lookup = Hit | Miss

let find t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Hit
  | None ->
    t.misses <- t.misses + 1;
    Miss

let evict_one t =
  match t.lru with
  | None -> None
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    if node.dirty then begin
      t.writebacks <- t.writebacks + 1;
      Some node.key
    end
    else None

let insert t ~key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.dirty <- node.dirty || dirty;
    unlink t node;
    push_front t node;
    []
  | None ->
    if t.capacity = 0 then begin
      if dirty then begin
        t.writebacks <- t.writebacks + 1;
        [ key ]
      end
      else []
    end
    else begin
      let victims = ref [] in
      while size t >= t.capacity do
        match evict_one t with
        | Some victim -> victims := victim :: !victims
        | None -> ()
      done;
      let node = { key; dirty; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      List.rev !victims
    end

let mark_dirty t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.dirty <- true;
    true
  | None -> false

let is_dirty t ~key =
  match Hashtbl.find_opt t.table key with Some node -> node.dirty | None -> false

let contains t ~key = Hashtbl.mem t.table key

let forget t ~key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key
  | None -> ()

let take_dirty t =
  (* Oldest first: walk from the LRU end. *)
  let rec collect acc = function
    | None -> List.rev acc
    | Some node ->
      let acc = if node.dirty then node.key :: acc else acc in
      node.dirty <- false;
      collect acc node.prev
  in
  collect [] t.lru

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
