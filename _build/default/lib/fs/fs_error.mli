(** File-system errors, shared by every implementation. *)

type t =
  | Enoent  (** No such file or directory. *)
  | Eexist  (** Path already exists. *)
  | Enotdir  (** A non-final path component is not a directory. *)
  | Eisdir  (** Data operation on a directory. *)
  | Enotempty  (** Removing a non-empty directory. *)
  | Enospc  (** Device full. *)
  | Einval  (** Malformed argument (bad path, negative offset...). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
