type t = Enoent | Eexist | Enotdir | Eisdir | Enotempty | Enospc | Einval

let to_string = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Enotempty -> "ENOTEMPTY"
  | Enospc -> "ENOSPC"
  | Einval -> "EINVAL"

let pp ppf t = Fmt.string ppf (to_string t)
let equal = ( = )
