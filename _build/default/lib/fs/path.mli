(** Absolute slash-separated paths.

    Paths are absolute ("/a/b/c"); components may not be empty, ".", "..",
    or contain a slash.  "/" denotes the root directory. *)

type t = string list
(** Parsed components, root-first; [\[\]] is the root. *)

val parse : string -> (t, Fs_error.t) result
(** [Error Einval] on relative paths, empty components, "." or "..". *)

val to_string : t -> string

val split_last : t -> (t * string) option
(** [(parent, basename)]; [None] for the root. *)

val valid_name : string -> bool
(** Is the string usable as a single component? *)
