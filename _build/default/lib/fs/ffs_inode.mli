(** FFS-style inode block-map arithmetic.

    The conventional file system maps a file's logical block index through
    twelve direct pointers, then a single-indirect block, then a
    double-indirect block — the "multiple levels of indirect blocks" whose
    complexity (and extra I/O) Section 3.1 notes a memory-resident file
    system can eliminate.  This module is the pure index math, kept apart
    from {!Ffs} so it can be tested exhaustively. *)

val direct_count : int
(** 12, as in the Berkeley fast file system. *)

val ptrs_per_block : block_bytes:int -> int
(** Pointer entries per indirect block (8-byte pointers). *)

type slot =
  | Direct of int  (** Index into the inode's direct array. *)
  | Single of int  (** Entry within the single-indirect block. *)
  | Double of int * int
      (** (entry in the double-indirect block, entry within the level-one
          block it points to). *)

val classify : ptrs:int -> int -> slot option
(** Where logical block [i] is mapped; [None] if the index exceeds what a
    double-indirect scheme addresses.
    @raise Invalid_argument on a negative index. *)

val max_blocks : ptrs:int -> int
(** Largest addressable file, in blocks. *)

val indirect_depth : ptrs:int -> int -> int
(** How many indirect-block accesses resolving index [i] costs (0, 1 or
    2) — the metadata I/O a flat extent map avoids. *)
