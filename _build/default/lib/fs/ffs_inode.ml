let direct_count = 12

let ptrs_per_block ~block_bytes =
  if block_bytes < 8 then invalid_arg "Ffs_inode.ptrs_per_block";
  block_bytes / 8

type slot = Direct of int | Single of int | Double of int * int

let classify ~ptrs i =
  if i < 0 then invalid_arg "Ffs_inode.classify: negative index";
  if i < direct_count then Some (Direct i)
  else begin
    let i = i - direct_count in
    if i < ptrs then Some (Single i)
    else begin
      let i = i - ptrs in
      if i < ptrs * ptrs then Some (Double (i / ptrs, i mod ptrs)) else None
    end
  end

let max_blocks ~ptrs = direct_count + ptrs + (ptrs * ptrs)

let indirect_depth ~ptrs i =
  match classify ~ptrs i with
  | Some (Direct _) -> 0
  | Some (Single _) -> 1
  | Some (Double _) -> 2
  | None -> invalid_arg "Ffs_inode.indirect_depth: index out of range"
