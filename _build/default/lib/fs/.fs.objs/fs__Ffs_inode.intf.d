lib/fs/ffs_inode.mli:
