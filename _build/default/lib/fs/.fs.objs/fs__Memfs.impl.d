lib/fs/memfs.ml: Array Device Fs_error Hashtbl List Path Printf Result Sim Storage String Time Units
