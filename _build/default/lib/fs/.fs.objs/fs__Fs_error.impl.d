lib/fs/fs_error.ml: Fmt
