lib/fs/buffer_cache.ml: Hashtbl List
