lib/fs/fs_error.mli: Format
