lib/fs/vfs.ml: Fs_error Printf Sim
