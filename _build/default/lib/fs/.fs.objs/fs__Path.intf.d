lib/fs/path.mli: Fs_error
