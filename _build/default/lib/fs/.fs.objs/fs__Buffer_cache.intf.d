lib/fs/buffer_cache.mli:
