lib/fs/vfs.mli: Fs_error Sim
