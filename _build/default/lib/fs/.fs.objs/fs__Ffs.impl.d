lib/fs/ffs.ml: Array Buffer_cache Device Engine Ffs_inode Fs_error Hashtbl List Option Path Printf Result Sim String Time Units
