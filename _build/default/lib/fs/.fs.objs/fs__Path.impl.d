lib/fs/path.ml: Fs_error List String
