lib/fs/memfs.mli: Fs_error Storage Vfs
