lib/fs/ffs_inode.ml:
