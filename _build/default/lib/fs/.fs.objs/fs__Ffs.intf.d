lib/fs/ffs.mli: Buffer_cache Device Fs_error Sim Vfs
