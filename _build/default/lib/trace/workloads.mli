(** Named workload profiles.

    Four mobile-computer workloads motivated by the paper's introduction:
    a general engineering mix calibrated to the Sprite/BSD measurements, a
    personal-information-manager (palmtop) day, a program-development burst,
    and a record-update (database-style) load.  Each is a {!Synth.profile};
    experiments reference them by name. *)

val engineering : Synth.profile
(** Sprite-like general workstation use: reads dominate, lots of small
    short-lived files, ~half of written bytes dead within ~30 s. *)

val pim : Synth.profile
(** Personal information manager on a palmtop: low rate, tiny files, heavy
    rewrite of a small working set. *)

val compile : Synth.profile
(** Edit-compile-run cycles: a churn of short-lived object files over a
    read-mostly source population. *)

val database : Synth.profile
(** Random in-place record updates within a few large files. *)

val all : Synth.profile list
(** Every named profile, for sweeps. *)

val find : string -> Synth.profile option
(** Look a profile up by [name]. *)
