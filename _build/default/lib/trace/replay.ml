open Sim

let run engine records ~f =
  List.iter
    (fun r ->
      let at = r.Record.at in
      if Time.( < ) (Engine.now engine) at then Engine.run_until engine at;
      f engine r)
    records

let run_all engine records ~f ~drain_until =
  run engine records ~f;
  Engine.run_until engine drain_until
