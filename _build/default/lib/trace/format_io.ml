open Sim

let to_line r =
  let ns = Time.to_ns r.Record.at in
  match r.Record.op with
  | Record.Create { file } -> Printf.sprintf "%d create %d" ns file
  | Record.Write { file; offset; bytes } ->
    Printf.sprintf "%d write %d %d %d" ns file offset bytes
  | Record.Read { file; offset; bytes } ->
    Printf.sprintf "%d read %d %d %d" ns file offset bytes
  | Record.Truncate { file; size } -> Printf.sprintf "%d trunc %d %d" ns file size
  | Record.Delete { file } -> Printf.sprintf "%d delete %d" ns file

let of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fields = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    let int s =
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "not an integer: %S" s)
    in
    let ( let* ) = Result.bind in
    let make at op = Ok (Some { Record.at = Time.of_ns at; op }) in
    match fields with
    | [ at; "create"; file ] ->
      let* at = int at in
      let* file = int file in
      make at (Record.Create { file })
    | [ at; "write"; file; offset; bytes ] ->
      let* at = int at in
      let* file = int file in
      let* offset = int offset in
      let* bytes = int bytes in
      make at (Record.Write { file; offset; bytes })
    | [ at; "read"; file; offset; bytes ] ->
      let* at = int at in
      let* file = int file in
      let* offset = int offset in
      let* bytes = int bytes in
      make at (Record.Read { file; offset; bytes })
    | [ at; "trunc"; file; size ] ->
      let* at = int at in
      let* file = int file in
      let* size = int size in
      make at (Record.Truncate { file; size })
    | [ at; "delete"; file ] ->
      let* at = int at in
      let* file = int file in
      make at (Record.Delete { file })
    | _ -> Error (Printf.sprintf "unrecognized record: %S" line)
  end

let write_channel oc records =
  List.iter
    (fun r ->
      output_string oc (to_line r);
      output_char oc '\n')
    records

let read_channel ic =
  let rec go lineno acc =
    match In_channel.input_line ic with
    | None -> Ok (List.rev acc)
    | Some line -> begin
      match of_line line with
      | Ok None -> go (lineno + 1) acc
      | Ok (Some r) -> go (lineno + 1) (r :: acc)
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
    end
  in
  go 1 []

let init_directive file size = Printf.sprintf "#init %d %d" file size

let parse_init line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "#init"; file; size ] -> begin
    match (int_of_string_opt file, int_of_string_opt size) with
    | Some file, Some size -> Some (file, size)
    | _ -> None
  end
  | _ -> None

let write_file ?(initial_files = []) path records =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun (file, size) ->
          output_string oc (init_directive file size);
          output_char oc '\n')
        initial_files;
      write_channel oc records)

let read_file path = In_channel.with_open_text path read_channel

let read_file_with_init path =
  In_channel.with_open_text path (fun ic ->
      let rec go lineno inits acc =
        match In_channel.input_line ic with
        | None -> Ok (List.rev inits, List.rev acc)
        | Some line -> begin
          match parse_init line with
          | Some init -> go (lineno + 1) (init :: inits) acc
          | None -> begin
            match of_line line with
            | Ok None -> go (lineno + 1) inits acc
            | Ok (Some r) -> go (lineno + 1) inits (r :: acc)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          end
        end
      in
      go 1 [] [])
