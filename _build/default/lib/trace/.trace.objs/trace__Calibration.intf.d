lib/trace/calibration.mli: Format Synth
