lib/trace/record.mli: Format Sim
