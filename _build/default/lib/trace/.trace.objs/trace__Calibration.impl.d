lib/trace/calibration.ml: Fmt Hashtbl List Record Sim Stats Synth Time
