lib/trace/synth.ml: Distribution Event_queue Float Hashtbl List Printf Record Result Rng Sim Time
