lib/trace/workloads.mli: Synth
