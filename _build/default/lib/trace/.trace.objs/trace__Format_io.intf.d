lib/trace/format_io.mli: Record
