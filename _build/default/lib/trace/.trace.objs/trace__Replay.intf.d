lib/trace/replay.mli: Record Sim
