lib/trace/replay.ml: Engine List Record Sim Time
