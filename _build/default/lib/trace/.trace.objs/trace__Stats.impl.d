lib/trace/stats.ml: Fmt Hashtbl List Record Sim Time Units
