lib/trace/workloads.ml: Distribution List Sim Synth
