lib/trace/record.ml: Fmt Sim
