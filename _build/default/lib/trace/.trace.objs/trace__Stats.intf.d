lib/trace/stats.mli: Format Record Sim
