lib/trace/format_io.ml: In_channel List Out_channel Printf Record Result Sim String Time
