lib/trace/synth.mli: Record Sim
