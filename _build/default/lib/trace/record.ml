type file_id = int

type op =
  | Create of { file : file_id }
  | Write of { file : file_id; offset : int; bytes : int }
  | Read of { file : file_id; offset : int; bytes : int }
  | Truncate of { file : file_id; size : int }
  | Delete of { file : file_id }

type t = { at : Sim.Time.t; op : op }

let file t =
  match t.op with
  | Create { file }
  | Write { file; _ }
  | Read { file; _ }
  | Truncate { file; _ }
  | Delete { file } ->
    file

let bytes_written t = match t.op with Write { bytes; _ } -> bytes | _ -> 0
let bytes_read t = match t.op with Read { bytes; _ } -> bytes | _ -> 0

let is_data_op t =
  match t.op with
  | Read _ | Write _ -> true
  | Create _ | Truncate _ | Delete _ -> false

let compare_by_time a b = Sim.Time.compare a.at b.at

let pp_op ppf = function
  | Create { file } -> Fmt.pf ppf "create f%d" file
  | Write { file; offset; bytes } -> Fmt.pf ppf "write f%d @%d +%d" file offset bytes
  | Read { file; offset; bytes } -> Fmt.pf ppf "read f%d @%d +%d" file offset bytes
  | Truncate { file; size } -> Fmt.pf ppf "truncate f%d ->%d" file size
  | Delete { file } -> Fmt.pf ppf "delete f%d" file

let pp ppf t = Fmt.pf ppf "[%a] %a" Sim.Time.pp t.at pp_op t.op
