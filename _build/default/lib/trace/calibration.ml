open Sim

type report = {
  ops : int;
  read_write_byte_ratio : float;
  mean_io_bytes : float;
  new_file_share_of_writes : float;
  dead_within_30s : float;
  dead_within_5s : float;
  short_lived_file_fraction : float;
  write_rate_bytes_per_s : float;
}

let analyze t =
  let records = t.Synth.records in
  let summary = Stats.summarize records in
  let fresh = Synth.first_fresh_file t in
  let new_file_bytes = ref 0 in
  let created = Hashtbl.create 256 in
  let deleted = ref 0 in
  List.iter
    (fun r ->
      (match r.Record.op with
      | Record.Create { file } when file >= fresh -> Hashtbl.replace created file ()
      | Record.Delete { file } when Hashtbl.mem created file -> incr deleted
      | Record.Write { file; bytes; _ } when file >= fresh ->
        new_file_bytes := !new_file_bytes + bytes
      | Record.Create _ | Record.Delete _ | Record.Write _ | Record.Read _
      | Record.Truncate _ ->
        ()))
    records;
  let data_ops = summary.Stats.reads + summary.Stats.writes in
  let death window =
    (Stats.write_death records ~window:(Time.span_s window)).Stats.dead_fraction
  in
  {
    ops = summary.Stats.ops;
    read_write_byte_ratio =
      (if summary.Stats.bytes_written = 0 then infinity
       else float_of_int summary.Stats.bytes_read /. float_of_int summary.Stats.bytes_written);
    mean_io_bytes =
      (if data_ops = 0 then 0.0
       else
         float_of_int (summary.Stats.bytes_read + summary.Stats.bytes_written)
         /. float_of_int data_ops);
    new_file_share_of_writes =
      (if summary.Stats.bytes_written = 0 then 0.0
       else float_of_int !new_file_bytes /. float_of_int summary.Stats.bytes_written);
    dead_within_30s = death 30.0;
    dead_within_5s = death 5.0;
    short_lived_file_fraction =
      (if Hashtbl.length created = 0 then 0.0
       else float_of_int !deleted /. float_of_int (Hashtbl.length created));
    write_rate_bytes_per_s = Stats.write_rate_bytes_per_s summary;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>ops: %d@,read/write byte ratio: %.2f@,mean io: %.0fB@,new-file share of \
     writes: %.0f%%@,dead within 5s/30s: %.0f%%/%.0f%%@,short-lived created files: \
     %.0f%%@,write rate: %.1fKB/s@]"
    r.ops r.read_write_byte_ratio r.mean_io_bytes
    (100.0 *. r.new_file_share_of_writes)
    (100.0 *. r.dead_within_5s)
    (100.0 *. r.dead_within_30s)
    (100.0 *. r.short_lived_file_fraction)
    (r.write_rate_bytes_per_s /. 1024.0)

type range = { lo : float; hi : float; what : string }

let sprite_targets =
  [
    { lo = 0.35; hi = 0.65; what = "written bytes dead within 30s" };
    { lo = 1.0; hi = 4.0; what = "read/write byte ratio" };
    { lo = 0.40; hi = 0.90; what = "written bytes going to new files" };
    { lo = 0.50; hi = 0.90; what = "created files that are short-lived" };
  ]

let measured report range =
  match range.what with
  | "written bytes dead within 30s" -> report.dead_within_30s
  | "read/write byte ratio" -> report.read_write_byte_ratio
  | "written bytes going to new files" -> report.new_file_share_of_writes
  | "created files that are short-lived" -> report.short_lived_file_fraction
  | _ -> nan

let evaluate report =
  List.map
    (fun range ->
      let v = measured report range in
      (range, v, v >= range.lo && v <= range.hi))
    sprite_targets

let conforms report = List.for_all (fun (_, _, ok) -> ok) (evaluate report)
