open Sim

let lognormal = Distribution.lognormal_of_mean_p50

let engineering =
  {
    Synth.name = "engineering";
    ops_per_second = 6.0;
    read_fraction = 0.55;
    full_read_fraction = 0.6;
    io_bytes = lognormal ~mean:4096.0 ~median:2048.0;
    new_file_fraction = 0.30;
    new_file_bytes = lognormal ~mean:16_384.0 ~median:6_144.0;
    short_lived_fraction = 0.65;
    short_lifetime_s = Exponential { mean = 12.0 };
    whole_file_rewrite_fraction = 0.10;
    overwrite_bias = 0.5;
    population = 500;
    file_bytes = lognormal ~mean:24_576.0 ~median:8_192.0;
    zipf_s = 0.9;
  }

let pim =
  {
    Synth.name = "pim";
    ops_per_second = 2.0;
    read_fraction = 0.70;
    full_read_fraction = 0.6;
    io_bytes = lognormal ~mean:1024.0 ~median:768.0;
    new_file_fraction = 0.25;
    new_file_bytes = lognormal ~mean:2048.0 ~median:1024.0;
    short_lived_fraction = 0.50;
    short_lifetime_s = Exponential { mean = 45.0 };
    whole_file_rewrite_fraction = 0.25;
    overwrite_bias = 0.8;
    population = 200;
    file_bytes = lognormal ~mean:4096.0 ~median:2048.0;
    zipf_s = 1.1;
  }

let compile =
  {
    Synth.name = "compile";
    ops_per_second = 15.0;
    read_fraction = 0.50;
    full_read_fraction = 0.7;
    io_bytes = lognormal ~mean:8192.0 ~median:4096.0;
    new_file_fraction = 0.60;
    new_file_bytes = lognormal ~mean:12_288.0 ~median:8_192.0;
    short_lived_fraction = 0.90;
    short_lifetime_s = Exponential { mean = 8.0 };
    whole_file_rewrite_fraction = 0.05;
    overwrite_bias = 0.3;
    population = 300;
    file_bytes = lognormal ~mean:16_384.0 ~median:8_192.0;
    zipf_s = 0.8;
  }

let database =
  {
    Synth.name = "database";
    ops_per_second = 10.0;
    read_fraction = 0.40;
    full_read_fraction = 0.05;
    io_bytes = lognormal ~mean:2048.0 ~median:1024.0;
    new_file_fraction = 0.02;
    new_file_bytes = lognormal ~mean:8192.0 ~median:4096.0;
    short_lived_fraction = 0.50;
    short_lifetime_s = Exponential { mean = 20.0 };
    whole_file_rewrite_fraction = 0.02;
    overwrite_bias = 0.3;
    population = 50;
    file_bytes = lognormal ~mean:524_288.0 ~median:262_144.0;
    zipf_s = 0.7;
  }

let all = [ engineering; pim; compile; database ]
let find name = List.find_opt (fun p -> p.Synth.name = name) all
