(** Workload-calibration report.

    The paper's storage-manager argument stands on measured Unix workload
    properties from the BSD trace study (Ousterhout et al., SOSP-10) and
    the Sprite study (Baker et al., SOSP-13).  This module condenses a
    trace into the handful of statistics those papers report, and states
    the target ranges our Sprite-calibrated profile must stay inside —
    the test suite pins {!Workloads.engineering} against them, so the E6
    experiment cannot silently drift off its premise. *)

type report = {
  ops : int;
  read_write_byte_ratio : float;  (** Bytes read / bytes written. *)
  mean_io_bytes : float;  (** Mean transfer size per data operation. *)
  new_file_share_of_writes : float;
      (** Written bytes going to files created within the trace. *)
  dead_within_30s : float;  (** Write-death fraction at the Sprite window. *)
  dead_within_5s : float;
  short_lived_file_fraction : float;
      (** Files created and deleted within the trace. *)
  write_rate_bytes_per_s : float;
}

val analyze : Synth.t -> report
(** Condense a generated workload. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Published targets}

    Ranges, not points: the original studies measured different machines
    over different weeks and themselves report ranges. *)

type range = { lo : float; hi : float; what : string }

val sprite_targets : range list
(** The properties E6 depends on:
    - bytes die young: 35–65 % of written bytes dead within 30 s (Baker
      report ~50 % for the mix of overwrites and deletes they saw);
    - reads outnumber writes by bytes, ratio 1.0–4.0 (BSD study: ~2–3);
    - most new bytes go to newly created files, 40–90 %;
    - a large share of created files are short-lived, 50–90 %. *)

val evaluate : report -> (range * float * bool) list
(** Each target range with the measured value and whether it is inside. *)

val conforms : report -> bool
(** All targets hold. *)
