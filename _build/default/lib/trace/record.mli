(** File-system trace records.

    A trace is a time-ordered list of operations against numbered files.
    Traces drive every end-to-end experiment: the synthetic generator
    ({!Synth}) produces them, {!Replay} feeds them to a file system, and
    {!Stats} analyzes them. *)

type file_id = int
(** Files are identified by small integers; names are a file-system concern. *)

type op =
  | Create of { file : file_id }
  | Write of { file : file_id; offset : int; bytes : int }
  | Read of { file : file_id; offset : int; bytes : int }
  | Truncate of { file : file_id; size : int }
  | Delete of { file : file_id }

type t = { at : Sim.Time.t; op : op }

val file : t -> file_id
(** The file the record touches. *)

val bytes_written : t -> int
(** Bytes of write payload ([Write] only; 0 otherwise). *)

val bytes_read : t -> int

val is_data_op : t -> bool
(** [Read] or [Write]. *)

val compare_by_time : t -> t -> int
(** Orders records by timestamp (stable for equal stamps is up to the
    sorting function used). *)

val pp : Format.formatter -> t -> unit
