lib/storage/write_buffer.ml: Event_queue Hashtbl List Option Sim Time Units
