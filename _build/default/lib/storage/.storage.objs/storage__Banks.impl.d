lib/storage/banks.ml: Fmt Printf
