lib/storage/cleaner.ml: Array Fmt Option Segment Sim Time
