lib/storage/heat.mli: Sim
