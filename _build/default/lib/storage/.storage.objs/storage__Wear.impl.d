lib/storage/wear.ml: Array Float Fmt Printf Segment Sim
