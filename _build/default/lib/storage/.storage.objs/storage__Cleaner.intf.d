lib/storage/cleaner.mli: Format Segment Sim
