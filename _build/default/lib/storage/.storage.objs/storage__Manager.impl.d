lib/storage/manager.ml: Array Banks Cleaner Device Engine Event_queue Fmt Fun Hashtbl Heat List Logs Option Printf Segment Sim Time Wear Write_buffer
