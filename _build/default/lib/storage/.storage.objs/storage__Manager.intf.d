lib/storage/manager.mli: Banks Cleaner Device Format Sim Wear Write_buffer
