lib/storage/wear.mli: Format Segment
