lib/storage/segment.ml: Array Sim
