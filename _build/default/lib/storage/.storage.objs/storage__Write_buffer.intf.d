lib/storage/write_buffer.mli: Sim
