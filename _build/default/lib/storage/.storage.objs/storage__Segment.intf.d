lib/storage/segment.mli: Sim
