lib/storage/banks.mli: Format
