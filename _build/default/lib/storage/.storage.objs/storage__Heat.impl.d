lib/storage/heat.ml: Float Hashtbl Sim Time
