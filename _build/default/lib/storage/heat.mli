(** Write-frequency classification for DRAM/flash migration.

    The storage manager "keeps data that is frequently written in DRAM, and
    data that is mostly read in flash memory" (Section 3.3).  To decide
    which is which it tracks an exponentially-decayed write count per
    block: each write adds one, and the accumulated value halves every
    [half_life].  Blocks whose decayed count exceeds a threshold are hot —
    the manager keeps them in DRAM past their writeback deadline. *)

type t

val create : half_life:Sim.Time.span -> unit -> t
(** @raise Invalid_argument if [half_life] is zero. *)

val record_write : t -> now:Sim.Time.t -> block:int -> unit

val heat : t -> now:Sim.Time.t -> block:int -> float
(** The decayed write count as of [now]; 0 for unknown blocks. *)

val is_hot : t -> now:Sim.Time.t -> block:int -> threshold:float -> bool

val forget : t -> block:int -> unit
(** Drop tracking state (block freed). *)

val tracked : t -> int
