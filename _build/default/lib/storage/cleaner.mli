(** Garbage-collection victim selection.

    When free segments run low the storage manager must clean: copy the
    live blocks out of some closed segment and erase it.  Which segment to
    clean is the policy decision this module makes.  Two classic policies:

    - {e Greedy}: clean the segment with the fewest live blocks — least
      copying now, but it re-cleans hot segments and lets cold, half-dead
      segments pin space forever.
    - {e Cost-benefit} (Rosenblum & Ousterhout): maximize
      [age * (1 - u) / (1 + u)] where [u] is utilization and [age] the time
      since the segment last changed; old, partly-dead segments get cleaned
      even at higher utilization, which keeps cleaning cost stable as the
      disk (here: flash) fills.

    Selection is a pure function over segment statistics so policies can be
    unit-tested in isolation and benchmarked head-to-head (experiment E7). *)

type policy = Greedy | Cost_benefit

val pp_policy : Format.formatter -> policy -> unit
val policy_name : policy -> string

val score : policy -> now:Sim.Time.t -> Segment.t -> float
(** Desirability of cleaning this segment (higher = better victim). *)

val select :
  policy -> now:Sim.Time.t -> eligible:(Segment.t -> bool) -> Segment.t array ->
  Segment.t option
(** The best eligible Closed segment, or [None].  Fully-live segments are
    still eligible (static wear leveling may force them); scoring naturally
    deprioritizes them. *)

val write_amplification : blocks_written:int -> blocks_flushed:int -> float
(** Total flash programs (client flushes + cleaner copies) per client
    flush; 1.0 means the cleaner copied nothing.  [blocks_written] counts
    every program, [blocks_flushed] only the client's.  Returns 1.0 when
    nothing was flushed. *)
