type policy = None_ | Dynamic | Static of { spread_threshold : int }

let policy_name = function
  | None_ -> "none"
  | Dynamic -> "dynamic"
  | Static { spread_threshold } -> Printf.sprintf "static(%d)" spread_threshold

let pp_policy ppf p = Fmt.string ppf (policy_name p)

let fold_free f acc segments =
  Array.fold_left
    (fun acc seg -> if Segment.state seg = Segment.Free then f acc seg else acc)
    acc segments

let pick_free ?(for_cold = false) policy ~erase_count segments =
  let least_worn () =
    fold_free
      (fun best seg ->
        match best with
        | Some b when erase_count b <= erase_count seg -> best
        | Some _ | None -> Some seg)
      None segments
  in
  let most_worn () =
    fold_free
      (fun best seg ->
        match best with
        | Some b when erase_count b >= erase_count seg -> best
        | Some _ | None -> Some seg)
      None segments
  in
  match policy with
  | None_ ->
    fold_free (fun best seg -> match best with None -> Some seg | some -> some) None segments
  | Dynamic -> least_worn ()
  | Static _ -> if for_cold then most_worn () else least_worn ()

type evenness = {
  min_erases : int;
  max_erases : int;
  mean_erases : float;
  stddev_erases : float;
}

let evenness ~erase_count segments =
  let summary = Sim.Stat.Summary.create () in
  Array.iter
    (fun seg -> Sim.Stat.Summary.observe summary (float_of_int (erase_count seg)))
    segments;
  if Sim.Stat.Summary.count summary = 0 then
    { min_erases = 0; max_erases = 0; mean_erases = 0.0; stddev_erases = 0.0 }
  else
    {
      min_erases = int_of_float (Sim.Stat.Summary.min summary);
      max_erases = int_of_float (Sim.Stat.Summary.max summary);
      mean_erases = Sim.Stat.Summary.mean summary;
      stddev_erases = Sim.Stat.Summary.stddev summary;
    }

let relocation_victim policy ~erase_count ~eligible segments =
  match policy with
  | None_ | Dynamic -> None
  | Static { spread_threshold } ->
    (* Trigger on max - mean rather than max - min: a single segment that
       happens never to erase (an outlier minimum) must not keep forced
       relocation running forever. *)
    let e = evenness ~erase_count segments in
    if float_of_int e.max_erases -. e.mean_erases <= float_of_int spread_threshold
    then None
    else
      Array.fold_left
        (fun best seg ->
          if Segment.state seg <> Segment.Closed || not (eligible seg) then best
          else
            match best with
            | Some b when erase_count b <= erase_count seg -> best
            | Some _ | None -> Some seg)
        None segments

let lifetime_writes ~endurance ~total_sectors ~max_erases ~total_erases =
  if max_erases = 0 then infinity
  else begin
    let mean = float_of_int total_erases /. float_of_int total_sectors in
    let skew = float_of_int max_erases /. Float.max mean 1e-9 in
    float_of_int endurance *. float_of_int total_sectors /. skew
  end
