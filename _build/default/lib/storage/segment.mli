(** Log segments over flash sectors.

    The storage manager organizes flash as a log of fixed-size segments,
    each a run of contiguous erase sectors within one bank (the
    log-structured organization of Rosenblum & Ousterhout that the paper's
    Section 3.3 points to).  A segment is the unit of cleaning and of bulk
    erasure.  One block (the write unit) occupies one sector here, so a
    segment of [n] sectors holds [n] blocks.

    This module is pure bookkeeping: which slots hold which live blocks,
    how much of the segment is dead.  Device timing lives in
    {!Device.Flash}; policy lives in {!Cleaner} and {!Wear}. *)

type state =
  | Free  (** Erased, available to be opened. *)
  | Open  (** The current head of a log; accepts appends. *)
  | Closed  (** Full; candidate for cleaning. *)

type t

val create : id:int -> first_sector:int -> nslots:int -> t
(** A fresh (Free) segment over sectors
    [\[first_sector, first_sector + nslots)].
    @raise Invalid_argument if [nslots <= 0]. *)

val id : t -> int
val state : t -> state
val nslots : t -> int
val first_sector : t -> int
val sector_of_slot : t -> int -> int

val open_ : t -> unit
(** Transition Free -> Open.  @raise Invalid_argument otherwise. *)

val append : t -> block:int -> int option
(** Claim the next slot for a (live) block; returns the slot, or [None] if
    the segment is full.  A full segment transitions to Closed
    automatically.  @raise Invalid_argument unless Open. *)

val kill : t -> slot:int -> unit
(** Mark the block in [slot] dead (superseded or freed).
    @raise Invalid_argument if the slot is empty or out of range. *)

val live_blocks : t -> (int * int) list
(** [(slot, block)] pairs still live, ascending by slot. *)

val live_count : t -> int
val used_slots : t -> int
(** Slots consumed so far (live + dead). *)

val utilization : t -> float
(** Live blocks over total slots, in [\[0, 1\]]. *)

val close : t -> unit
(** Force Open -> Closed (e.g. when switching banks).
    @raise Invalid_argument unless Open. *)

val reset_to_free : t -> unit
(** After erasure: mark the segment empty and Free.
    @raise Invalid_argument if live blocks remain. *)

val touch : t -> at:Sim.Time.t -> unit
(** Record modification time (used by cost-benefit cleaning as "age"). *)

val last_touched : t -> Sim.Time.t
