open Sim

let log_src = Logs.Src.create "ssmc.storage.manager" ~doc:"Physical storage manager"

module Log = (val Logs.src_log log_src)

exception Out_of_space

type config = {
  segment_sectors : int;
  buffer : Write_buffer.config;
  cleaner : Cleaner.policy;
  wear : Wear.policy;
  banking : Banks.policy;
  low_water : int;
  high_water : int;
  hot_threshold : float option;
  heat_half_life : Time.span;
  max_flush_batch : int;
  flush_spacing : Time.span;
  flush_watermark : float option;
}

let default_config =
  {
    segment_sectors = 32;
    buffer = Write_buffer.default_config;
    cleaner = Cleaner.Cost_benefit;
    wear = Wear.Dynamic;
    banking = Banks.Unified;
    low_water = 2;
    high_water = 4;
    hot_threshold = None;
    heat_half_life = Time.span_s 60.0;
    max_flush_batch = 16;
    flush_spacing = Time.span_ms 100.0;
    flush_watermark = None;
  }

type block = int

type loc =
  | Blank  (** Allocated, no data anywhere yet. *)
  | Buffered  (** Dirty in the DRAM write buffer. *)
  | Flashed of { seg : int; slot : int }

type meta = { mutable loc : loc }

type t = {
  cfg : config;
  engine : Engine.t;
  flash : Device.Flash.t;
  dram : Device.Dram.t;
  segments : Segment.t array;
  retired : bool array;
  segs_per_bank : int;
  buffer : Write_buffer.t;
  heat : Heat.t;
  meta : (block, meta) Hashtbl.t;
  mutable next_block : block;
  mutable open_fresh : int option;
  mutable open_clean : int option;
  mutable open_cold : int option;
  mutable timer : (Event_queue.handle * Time.t) option;
  mutable cleaning : bool;  (** Re-entrancy guard for the cleaner. *)
  (* Sector headers, as the log-structured convention stores them on the
     medium: which logical block a sector holds and its write version.
     Conceptually part of flash (it survives power loss); kept here because
     the device model does not store payloads. *)
  durable : (int, int * int) Hashtbl.t;
  mutable next_version : int;
  (* Counters. *)
  mutable c_writes : int;
  mutable c_reads : int;
  mutable c_flushed : int;
  mutable c_cleaned : int;
  mutable c_cold : int;
  mutable c_hot_retained : int;
  mutable c_cleanings : int;
}

let create cfg ~engine ~flash ~dram =
  if cfg.segment_sectors <= 0 then invalid_arg "Manager.create: segment_sectors <= 0";
  if cfg.segment_sectors > Device.Flash.sectors_per_bank flash then
    invalid_arg "Manager.create: segment does not fit in a bank";
  if cfg.low_water < 1 || cfg.high_water < cfg.low_water then
    invalid_arg "Manager.create: watermarks must satisfy 1 <= low <= high";
  (match Banks.validate cfg.banking ~nbanks:(Device.Flash.nbanks flash) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Manager.create: " ^ msg));
  let nbanks = Device.Flash.nbanks flash in
  let segs_per_bank = Device.Flash.sectors_per_bank flash / cfg.segment_sectors in
  if segs_per_bank < 1 then invalid_arg "Manager.create: bank smaller than a segment";
  let nsegments = nbanks * segs_per_bank in
  if nsegments < cfg.high_water + 1 then
    invalid_arg "Manager.create: flash too small for the cleaning watermarks";
  let segments =
    Array.init nsegments (fun i ->
        let bank = i / segs_per_bank in
        let index_in_bank = i mod segs_per_bank in
        let first_sector =
          (bank * Device.Flash.sectors_per_bank flash)
          + (index_in_bank * cfg.segment_sectors)
        in
        Segment.create ~id:i ~first_sector ~nslots:cfg.segment_sectors)
  in
  {
    cfg;
    engine;
    flash;
    dram;
    segments;
    retired = Array.make nsegments false;
    segs_per_bank;
    buffer = Write_buffer.create cfg.buffer;
    heat = Heat.create ~half_life:cfg.heat_half_life ();
    meta = Hashtbl.create 4096;
    next_block = 0;
    open_fresh = None;
    open_clean = None;
    open_cold = None;
    timer = None;
    cleaning = false;
    durable = Hashtbl.create 4096;
    next_version = 0;
    c_writes = 0;
    c_reads = 0;
    c_flushed = 0;
    c_cleaned = 0;
    c_cold = 0;
    c_hot_retained = 0;
    c_cleanings = 0;
  }

let block_bytes t = Device.Flash.sector_bytes t.flash
let nsegments t = Array.length t.segments
let bank_of_segment t i = i / t.segs_per_bank
let flash t = t.flash
let dram t = t.dram
let engine t = t.engine

let capacity_blocks t =
  let usable = ref 0 in
  Array.iteri
    (fun i seg -> if not t.retired.(i) then usable := !usable + Segment.nslots seg)
    t.segments;
  !usable

let find_meta t b =
  match Hashtbl.find_opt t.meta b with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Manager: unknown block %d" b)

let erase_count_of_segment t seg =
  (* Segments wear uniformly (whole-segment erases), so the first sector's
     count stands for the segment. *)
  Device.Flash.erase_count t.flash ~sector:(Segment.first_sector seg)

let free_segment_count t =
  let n = ref 0 in
  Array.iteri
    (fun i seg ->
      if (not t.retired.(i)) && Segment.state seg = Segment.Free then incr n)
    t.segments;
  !n

(* Kill a block's flash copy (data superseded or freed). *)
let kill_flash_copy t m =
  match m.loc with
  | Flashed { seg; slot } ->
    Segment.kill t.segments.(seg) ~slot;
    m.loc <- Blank
  | Blank | Buffered -> ()

let or_device_failure = function
  | Ok op -> op
  | Error e -> Fmt.failwith "Manager: unexpected flash failure: %a" Device.Flash.pp_error e

(* Written as part of every sector program (the 16-byte header). *)
let record_header t ~sector ~block =
  let version = t.next_version in
  t.next_version <- version + 1;
  Hashtbl.replace t.durable sector (block, version)

(* --- Log appends, segment acquisition, cleaning -------------------------- *)

let rec ensure_open t ~purpose ~cursor =
  let slot_ref, set =
    match purpose with
    | Banks.Fresh_write -> (t.open_fresh, fun v -> t.open_fresh <- v)
    | Banks.Clean_out -> (t.open_clean, fun v -> t.open_clean <- v)
    | Banks.Cold_load -> (t.open_cold, fun v -> t.open_cold <- v)
  in
  match slot_ref with
  | Some i when Segment.state t.segments.(i) = Segment.Open -> t.segments.(i)
  | Some _ | None ->
    let seg = acquire t ~purpose ~cursor in
    set (Some (Segment.id seg));
    seg

and acquire t ~purpose ~cursor =
  if not t.cleaning then maybe_clean t ~cursor;
  let nbanks = Device.Flash.nbanks t.flash in
  let pick ~restrict =
    let eligible seg =
      let i = Segment.id seg in
      Segment.state seg = Segment.Free
      && (not t.retired.(i))
      && ((not restrict)
         || Banks.allowed t.cfg.banking ~nbanks purpose ~bank:(bank_of_segment t i))
    in
    let candidates = Array.of_list (List.filter eligible (Array.to_list t.segments)) in
    if Array.length candidates = 0 then None
    else begin
      (* Prefer the least-busy bank so queued writeback spreads across the
         banks it is allowed to use; wear policy picks within that bank. *)
      let bank_busy seg =
        Device.Flash.bank_busy_until t.flash ~bank:(bank_of_segment t (Segment.id seg))
      in
      let best_busy =
        Array.fold_left (fun acc seg -> Time.min acc (bank_busy seg))
          (bank_busy candidates.(0)) candidates
      in
      let in_best =
        Array.of_list
          (List.filter
             (fun seg -> Time.equal (bank_busy seg) best_busy)
             (Array.to_list candidates))
      in
      let for_cold =
        match purpose with
        | Banks.Clean_out | Banks.Cold_load -> true
        | Banks.Fresh_write -> false
      in
      Wear.pick_free ~for_cold t.cfg.wear ~erase_count:(erase_count_of_segment t) in_best
    end
  in
  let choice =
    match pick ~restrict:true with
    | Some s -> Some s
    | None ->
      (* No free segment in the banks this purpose may use: try to recycle
         one there before polluting the other banks' partition. *)
      let in_allowed seg =
        Banks.allowed t.cfg.banking ~nbanks purpose
          ~bank:(bank_of_segment t (Segment.id seg))
      in
      if (not t.cleaning) && clean_one t ~cursor ~among:in_allowed then
        pick ~restrict:true
      else None
  in
  let choice =
    match choice with Some s -> Some s | None -> pick ~restrict:false
  in
  match choice with
  | Some seg ->
    Segment.open_ seg;
    Segment.touch seg ~at:(Engine.now t.engine);
    seg
  | None ->
    if t.cleaning then begin
      Log.err (fun m -> m "out of space (during cleaning)");
      raise Out_of_space
    end
    else begin
      (* One forced cleaning pass, then give up. *)
      if not (clean_one t ~cursor) then begin
        Log.err (fun m ->
            m "out of space: %d live blocks, %d free segments"
              (Array.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 t.segments)
              (free_segment_count t));
        raise Out_of_space
      end;
      acquire t ~purpose ~cursor
    end

and maybe_clean t ~cursor =
  while
    free_segment_count t < t.cfg.low_water
    && free_segment_count t < t.cfg.high_water
    && clean_one t ~cursor
  do
    ()
  done

and clean_one ?(among = fun _ -> true) t ~cursor =
  if t.cleaning then false
  else begin
    t.cleaning <- true;
    Fun.protect ~finally:(fun () -> t.cleaning <- false) @@ fun () ->
    let now = Engine.now t.engine in
    (* Only Closed segments are ever selected (both selectors filter on
       state), so retirement (and the caller's bank constraint) are the
       only extra eligibility conditions. *)
    let eligible seg = (not t.retired.(Segment.id seg)) && among seg in
    let victim =
      match
        Wear.relocation_victim t.cfg.wear ~erase_count:(erase_count_of_segment t)
          ~eligible t.segments
      with
      | Some v -> Some v
      | None -> Cleaner.select t.cfg.cleaner ~now ~eligible t.segments
    in
    match victim with
    | None ->
      Log.debug (fun m -> m "cleaner: no eligible victim");
      false
    | Some victim ->
      Log.debug (fun m ->
          m "cleaning segment %d (live %d/%d, %d erases)" (Segment.id victim)
            (Segment.live_count victim) (Segment.nslots victim)
            (erase_count_of_segment t victim));
      (* Don't clean a segment that frees nothing unless wear leveling
         forced it (in which case it was returned by relocation_victim). *)
      t.c_cleanings <- t.c_cleanings + 1;
      let bytes = block_bytes t in
      (* Copy out the survivors. *)
      List.iter
        (fun (slot, b) ->
          let sector = Segment.sector_of_slot victim slot in
          let read_op =
            or_device_failure (Device.Flash.read t.flash ~now:!cursor ~sector ~bytes)
          in
          cursor := read_op.Device.Flash.finish;
          let out = ensure_open t ~purpose:Banks.Clean_out ~cursor in
          (match Segment.append out ~block:b with
          | Some out_slot ->
            let out_sector = Segment.sector_of_slot out out_slot in
            let prog =
              or_device_failure
                (Device.Flash.program t.flash ~now:!cursor ~sector:out_sector ~bytes)
            in
            cursor := prog.Device.Flash.finish;
            record_header t ~sector:out_sector ~block:b;
            Segment.touch out ~at:now;
            let m = find_meta t b in
            m.loc <- Flashed { seg = Segment.id out; slot = out_slot };
            Segment.kill victim ~slot
          | None ->
            (* ensure_open returned a full segment: impossible by construction. *)
            assert false);
          t.c_cleaned <- t.c_cleaned + 1)
        (Segment.live_blocks victim);
      (* Erase the sectors that were programmed since the last erase. *)
      for slot = 0 to Segment.used_slots victim - 1 do
        let sector = Segment.sector_of_slot victim slot in
        Hashtbl.remove t.durable sector;
        match Device.Flash.erase t.flash ~now:!cursor ~sector with
        | Ok op -> cursor := op.Device.Flash.finish
        | Error Device.Flash.Bad_sector -> ()
        | Error e ->
          Fmt.failwith "Manager: erase failed: %a" Device.Flash.pp_error e
      done;
      Segment.reset_to_free victim;
      (* Retire the segment if wear-out claimed any of its sectors. *)
      let worn = ref false in
      for slot = 0 to Segment.nslots victim - 1 do
        if Device.Flash.is_bad t.flash ~sector:(Segment.sector_of_slot victim slot)
        then worn := true
      done;
      if !worn then begin
        t.retired.(Segment.id victim) <- true;
        Log.warn (fun m ->
            m "segment %d retired (worn out); %d segments remain"
              (Segment.id victim)
              (Array.length t.segments
              - Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 t.retired))
      end;
      true
  end

(* Program one client/cold block at the head of the log. *)
let append_block t ~purpose ~cursor b =
  let seg = ensure_open t ~purpose ~cursor in
  match Segment.append seg ~block:b with
  | None -> assert false (* ensure_open yields an Open (non-full) segment *)
  | Some slot ->
    let sector = Segment.sector_of_slot seg slot in
    let prog =
      or_device_failure
        (Device.Flash.program t.flash ~now:!cursor ~sector ~bytes:(block_bytes t))
    in
    cursor := prog.Device.Flash.finish;
    record_header t ~sector ~block:b;
    Segment.touch seg ~at:(Engine.now t.engine);
    let m = find_meta t b in
    m.loc <- Flashed { seg = Segment.id seg; slot }

(* --- Writeback timer ------------------------------------------------------ *)

let rec arm_timer t =
  match Write_buffer.next_deadline t.buffer with
  | None -> ()
  | Some deadline ->
    let need_schedule =
      match t.timer with
      | Some (_, at) -> Time.( < ) deadline at
      | None -> true
    in
    if need_schedule then begin
      (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
      let at = Time.max deadline (Engine.now t.engine) in
      let handle = Engine.schedule t.engine ~at (fun _ -> timer_fired t) in
      t.timer <- Some (handle, at)
    end

and over_watermark t =
  match t.cfg.flush_watermark with
  | None -> false
  | Some w ->
    Write_buffer.capacity t.buffer > 0
    && float_of_int (Write_buffer.size t.buffer)
       >= w *. float_of_int (Write_buffer.capacity t.buffer)

and timer_fired t =
  t.timer <- None;
  let now = Engine.now t.engine in
  let expired = Write_buffer.take_expired ~limit:t.cfg.max_flush_batch t.buffer ~now in
  (* Capacity-threshold policy: above the watermark, flush ahead of the
     deadlines, oldest first. *)
  let expired =
    if List.length expired >= t.cfg.max_flush_batch then expired
    else begin
      let extra = ref [] in
      while
        over_watermark t
        && List.length expired + List.length !extra < t.cfg.max_flush_batch
        &&
        match Write_buffer.oldest t.buffer with
        | Some b -> Write_buffer.take t.buffer ~block:b && (extra := b :: !extra; true)
        | None -> false
      do
        ()
      done;
      expired @ List.rev !extra
    end
  in
  let cursor = ref now in
  List.iter
    (fun b ->
      let retain =
        match t.cfg.hot_threshold with
        | Some threshold when Heat.is_hot t.heat ~now ~block:b ~threshold ->
          Write_buffer.readmit t.buffer ~now ~block:b
        | Some _ | None -> false
      in
      if retain then t.c_hot_retained <- t.c_hot_retained + 1
      else begin
        (* Reading the buffered copy out of DRAM. *)
        ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
        append_block t ~purpose:Banks.Fresh_write ~cursor b;
        t.c_flushed <- t.c_flushed + 1
      end)
    expired;
  (* If a backlog remains, continue only after the device digested this
     batch and a spacing gap — pacing bounds how much bank time queued
     writeback can steal from foreground reads. *)
  match Write_buffer.next_deadline t.buffer with
  | Some d when Time.( <= ) d now || over_watermark t ->
    ignore d;
    let at = Time.max (Time.add now t.cfg.flush_spacing) !cursor in
    let handle = Engine.schedule t.engine ~at (fun _ -> timer_fired t) in
    t.timer <- Some (handle, at)
  | Some _ | None -> arm_timer t

(* --- Client operations ---------------------------------------------------- *)

let alloc t =
  let b = t.next_block in
  t.next_block <- b + 1;
  Hashtbl.replace t.meta b { loc = Blank };
  b

(* Flush one specific dirty block synchronously (eviction path). *)
let flush_now t ~cursor b =
  if Write_buffer.take t.buffer ~block:b then begin
    ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
    append_block t ~purpose:Banks.Fresh_write ~cursor b;
    t.c_flushed <- t.c_flushed + 1
  end

let write_block_at t ~at b =
  let m = find_meta t b in
  t.c_writes <- t.c_writes + 1;
  Heat.record_write t.heat ~now:at ~block:b;
  kill_flash_copy t m;
  let cursor = ref at in
  let dram_latency = Device.Dram.write t.dram ~bytes:(block_bytes t) in
  cursor := Time.add !cursor dram_latency;
  if Write_buffer.capacity t.buffer = 0 then begin
    (* Write-through: straight to flash; the client eats the program time. *)
    append_block t ~purpose:Banks.Fresh_write ~cursor b;
    t.c_flushed <- t.c_flushed + 1
  end
  else begin
    let rec admit () =
      match Write_buffer.write t.buffer ~now:at ~block:b with
      | Write_buffer.Absorbed | Write_buffer.Admitted -> m.loc <- Buffered
      | Write_buffer.Needs_eviction -> begin
        match Write_buffer.oldest t.buffer with
        | Some victim ->
          flush_now t ~cursor victim;
          admit ()
        | None -> assert false (* full implies non-empty *)
      end
    in
    admit ();
    (if over_watermark t then begin
       (* Pull the next flush forward to now. *)
       let now_t = Engine.now t.engine in
       let need =
         match t.timer with Some (_, at) -> Time.( < ) now_t at | None -> true
       in
       if need then begin
         (match t.timer with Some (h, _) -> Engine.cancel t.engine h | None -> ());
         let handle = Engine.schedule t.engine ~at:now_t (fun _ -> timer_fired t) in
         t.timer <- Some (handle, now_t)
       end
     end);
    arm_timer t
  end;
  !cursor

let write_block t b =
  let now = Engine.now t.engine in
  Time.diff (write_block_at t ~at:now b) now

let read_block_at ?bytes t ~at b =
  let m = find_meta t b in
  let bytes = Option.value bytes ~default:(block_bytes t) in
  t.c_reads <- t.c_reads + 1;
  match m.loc with
  | Blank | Buffered -> Time.add at (Device.Dram.read t.dram ~bytes)
  | Flashed { seg; slot } ->
    let sector = Segment.sector_of_slot t.segments.(seg) slot in
    let op = or_device_failure (Device.Flash.read t.flash ~now:at ~sector ~bytes) in
    op.Device.Flash.finish

let read_block ?bytes t b =
  let now = Engine.now t.engine in
  Time.diff (read_block_at ?bytes t ~at:now b) now

let free_block t b =
  let m = find_meta t b in
  (match m.loc with
  | Buffered -> ignore (Write_buffer.remove t.buffer ~block:b)
  | Flashed _ -> kill_flash_copy t m
  | Blank -> ());
  Heat.forget t.heat ~block:b;
  Hashtbl.remove t.meta b

let load_cold t b =
  let m = find_meta t b in
  (match m.loc with
  | Blank -> ()
  | Buffered | Flashed _ -> invalid_arg "Manager.load_cold: block already has data");
  let cursor = ref (Engine.now t.engine) in
  append_block t ~purpose:Banks.Cold_load ~cursor b;
  t.c_cold <- t.c_cold + 1

let flush_all t =
  let now = Engine.now t.engine in
  let cursor = ref now in
  List.iter
    (fun b ->
      ignore (Device.Dram.read t.dram ~bytes:(block_bytes t));
      append_block t ~purpose:Banks.Fresh_write ~cursor b;
      t.c_flushed <- t.c_flushed + 1)
    (Write_buffer.drain t.buffer);
  Time.diff !cursor now

(* --- Introspection -------------------------------------------------------- *)

type stats = {
  client_writes : int;
  client_reads : int;
  absorbed_writes : int;
  cancelled_blocks : int;
  blocks_flushed : int;
  blocks_cleaned : int;
  cold_loads : int;
  hot_retained : int;
  cleanings : int;
  dirty_blocks : int;
  free_segments : int;
  retired_segments : int;
  live_blocks : int;
  write_reduction : float;
  write_amplification : float;
}

let live_block_count t =
  Array.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 t.segments

let stats t =
  let retired = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 t.retired in
  {
    client_writes = t.c_writes;
    client_reads = t.c_reads;
    absorbed_writes = Write_buffer.absorbed_writes t.buffer;
    cancelled_blocks = Write_buffer.cancelled_blocks t.buffer;
    blocks_flushed = t.c_flushed;
    blocks_cleaned = t.c_cleaned;
    cold_loads = t.c_cold;
    hot_retained = t.c_hot_retained;
    cleanings = t.c_cleanings;
    dirty_blocks = Write_buffer.size t.buffer;
    free_segments = free_segment_count t;
    retired_segments = retired;
    live_blocks = live_block_count t;
    write_reduction =
      (if t.c_writes = 0 then 0.0
       else 1.0 -. (float_of_int t.c_flushed /. float_of_int t.c_writes));
    write_amplification =
      Cleaner.write_amplification
        ~blocks_written:(t.c_flushed + t.c_cleaned)
        ~blocks_flushed:t.c_flushed;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "writes=%d reads=%d absorbed=%d cancelled=%d flushed=%d cleaned=%d \
     reduction=%.1f%% amplification=%.2f dirty=%d free_segs=%d live=%d"
    s.client_writes s.client_reads s.absorbed_writes s.cancelled_blocks
    s.blocks_flushed s.blocks_cleaned
    (100.0 *. s.write_reduction)
    s.write_amplification s.dirty_blocks s.free_segments s.live_blocks

let wear_evenness t =
  Wear.evenness ~erase_count:(erase_count_of_segment t) t.segments

let segment_of_block t b =
  match (find_meta t b).loc with
  | Flashed { seg; _ } -> Some seg
  | Blank | Buffered -> None

let block_is_dirty t b =
  match (find_meta t b).loc with Buffered -> true | Blank | Flashed _ -> false

let block_exists t b = Hashtbl.mem t.meta b

let known_blocks t =
  List.sort compare (Hashtbl.fold (fun b _ acc -> b :: acc) t.meta [])

let reset_traffic t =
  t.c_writes <- 0;
  t.c_reads <- 0;
  t.c_flushed <- 0;
  t.c_cleaned <- 0;
  t.c_cold <- 0;
  t.c_hot_retained <- 0;
  t.c_cleanings <- 0;
  Write_buffer.reset_counters t.buffer;
  Device.Flash.reset_stats t.flash;
  Device.Dram.reset_stats t.dram

(* --- Crash recovery ---------------------------------------------------------- *)

type remount_report = {
  sectors_scanned : int;
  live_recovered : int;
  stale_discarded : int;
  buffered_lost : int;
}

let pp_remount_report ppf r =
  Fmt.pf ppf "scanned=%d recovered=%d stale=%d lost_from_buffer=%d" r.sectors_scanned
    r.live_recovered r.stale_discarded r.buffered_lost

let crash_and_remount t =
  let buffered_lost = Write_buffer.size t.buffer in
  let fresh = create t.cfg ~engine:t.engine ~flash:t.flash ~dram:t.dram in
  Hashtbl.iter (fun k v -> Hashtbl.replace fresh.durable k v) t.durable;
  fresh.next_version <- t.next_version;
  (* Scan every readable sector's header, charging the device. *)
  let now = Engine.now t.engine in
  let cursor = ref now in
  let scanned = ref 0 in
  for sector = 0 to Device.Flash.nsectors t.flash - 1 do
    match Device.Flash.read t.flash ~now:!cursor ~sector ~bytes:16 with
    | Ok op ->
      incr scanned;
      cursor := op.Device.Flash.finish
    | Error Device.Flash.Bad_sector -> ()
    | Error e -> Fmt.failwith "remount: %a" Device.Flash.pp_error e
  done;
  (* Newest version of each block wins. *)
  let winner = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun sector (block, version) ->
      match Hashtbl.find_opt winner block with
      | Some (v, _) when v >= version -> ()
      | Some _ | None -> Hashtbl.replace winner block (version, sector))
    fresh.durable;
  (* Rebuild segment occupancy: appends were sequential, so each segment's
     programmed sectors are a prefix of its slots. *)
  let stale = ref 0 in
  let max_block = ref (-1) in
  Array.iter
    (fun seg ->
      let nslots = Segment.nslots seg in
      let occupied = ref 0 in
      for slot = 0 to nslots - 1 do
        if Hashtbl.mem fresh.durable (Segment.sector_of_slot seg slot) then incr occupied
      done;
      if !occupied > 0 then begin
        Segment.open_ seg;
        for slot = 0 to !occupied - 1 do
          let sector = Segment.sector_of_slot seg slot in
          match Hashtbl.find_opt fresh.durable sector with
          | None ->
            (* A hole would mean appends were not sequential. *)
            assert false
          | Some (block, version) ->
            (match Segment.append seg ~block with
            | Some s -> assert (s = slot)
            | None -> assert false);
            max_block := max !max_block block;
            let winning =
              match Hashtbl.find_opt winner block with
              | Some (v, _) -> v = version
              | None -> false
            in
            if winning then begin
              Hashtbl.replace fresh.meta block
                { loc = Flashed { seg = Segment.id seg; slot } }
            end
            else begin
              incr stale;
              Segment.kill seg ~slot
            end
        done;
        if Segment.state seg = Segment.Open then Segment.close seg
      end)
    fresh.segments;
  (* Mark wear-retired segments on the fresh manager too. *)
  Array.iteri
    (fun i seg ->
      let worn = ref false in
      for slot = 0 to Segment.nslots seg - 1 do
        if Device.Flash.is_bad t.flash ~sector:(Segment.sector_of_slot seg slot) then
          worn := true
      done;
      if !worn then fresh.retired.(i) <- true)
    fresh.segments;
  fresh.next_block <- !max_block + 1;
  let report =
    {
      sectors_scanned = !scanned;
      live_recovered = Hashtbl.length winner;
      stale_discarded = !stale;
      buffered_lost;
    }
  in
  Log.info (fun m -> m "remount: %a" pp_remount_report report);
  (fresh, Time.diff !cursor now, report)
