open Sim

type entry = { mutable value : float; mutable stamp : Time.t }

type t = { half_life_ns : float; table : (int, entry) Hashtbl.t }

let create ~half_life () =
  let ns = Time.span_to_ns half_life in
  if ns = 0 then invalid_arg "Heat.create: zero half_life";
  { half_life_ns = float_of_int ns; table = Hashtbl.create 1024 }

let decayed t e ~now =
  let dt = float_of_int (Time.to_ns now - Time.to_ns e.stamp) in
  if dt <= 0.0 then e.value else e.value *. Float.pow 2.0 (-.dt /. t.half_life_ns)

let record_write t ~now ~block =
  match Hashtbl.find_opt t.table block with
  | Some e ->
    e.value <- decayed t e ~now +. 1.0;
    e.stamp <- now
  | None -> Hashtbl.replace t.table block { value = 1.0; stamp = now }

let heat t ~now ~block =
  match Hashtbl.find_opt t.table block with
  | Some e -> decayed t e ~now
  | None -> 0.0

let is_hot t ~now ~block ~threshold = heat t ~now ~block >= threshold
let forget t ~block = Hashtbl.remove t.table block
let tracked t = Hashtbl.length t.table
