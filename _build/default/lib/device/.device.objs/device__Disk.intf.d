lib/device/disk.mli: Power Sim Specs
