lib/device/disk.ml: Power Rng Sim Specs Stat Time
