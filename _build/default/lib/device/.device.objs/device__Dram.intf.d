lib/device/dram.mli: Power Sim Specs
