lib/device/battery.ml: Float Sim Time
