lib/device/dram.ml: Power Sim Specs Stat Units
