lib/device/power.mli: Sim
