lib/device/specs.ml: Float Sim Time Units
