lib/device/battery.mli: Sim
