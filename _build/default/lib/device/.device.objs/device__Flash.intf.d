lib/device/flash.mli: Format Power Sim Specs
