lib/device/flash.ml: Array Fmt Power Sim Specs Stat Time Units
