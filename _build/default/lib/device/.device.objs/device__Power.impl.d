lib/device/power.ml: Sim Time
