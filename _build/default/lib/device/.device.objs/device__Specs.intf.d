lib/device/specs.mli: Sim
