open Sim

let watts_of_mw mw = mw /. 1000.0
let joules ~watts d = watts *. Time.span_to_s d

module Meter = struct
  type t = {
    label : string;
    mutable active : float;
    mutable background : float;
  }

  let create ~label = { label; active = 0.0; background = 0.0 }
  let label t = t.label

  let charge t ~joules =
    if joules < 0.0 then invalid_arg "Power.Meter.charge: negative";
    t.active <- t.active +. joules

  let charge_power t ~watts d = charge t ~joules:(joules ~watts d)

  let charge_background t ~watts d =
    let j = joules ~watts d in
    if j < 0.0 then invalid_arg "Power.Meter.charge_background: negative";
    t.background <- t.background +. j

  let active_joules t = t.active
  let background_joules t = t.background
  let total_joules t = t.active +. t.background

  let reset t =
    t.active <- 0.0;
    t.background <- 0.0
end
