(** Battery-backed DRAM device model.

    DRAM in the paper's storage organization is primary storage: uniform
    random-access reads and writes at nanosecond latency, unlimited
    endurance, contents preserved across power-off only while a battery
    holds self-refresh.  The model charges per-access latency and energy and
    counts traffic; space management lives in the storage manager. *)

type t

val create : ?spec:Specs.dram_spec -> size_bytes:int -> battery_backed:bool -> unit -> t
(** [spec] defaults to {!Specs.nec_dram}.
    @raise Invalid_argument if [size_bytes <= 0]. *)

val size_bytes : t -> int
val battery_backed : t -> bool
val spec : t -> Specs.dram_spec

val read : t -> bytes:int -> Sim.Time.span
(** Latency of reading [bytes]; records traffic and energy. *)

val write : t -> bytes:int -> Sim.Time.span

val charge_idle : t -> Sim.Time.span -> unit
(** Charge self-refresh draw for an interval during which the device held
    data but serviced nothing. *)

val meter : t -> Power.Meter.t

(** {1 Traffic counters} *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val reset_stats : t -> unit
