(** Magnetic-disk device model — the baseline the paper argues against.

    The model captures the mechanical costs a solid-state organization
    eliminates: seek time (affine in the square root of cylinder distance),
    rotational latency (uniform over a revolution), streaming transfer, and
    spindle power with spin-down after an idle timeout and a spin-up penalty
    on the next access. *)

type t

val create :
  ?spec:Specs.disk_spec ->
  ?spindown_timeout:Sim.Time.span ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** [spec] defaults to {!Specs.hp_kittyhawk}.  When [spindown_timeout] is
    given, the disk spins down after that much idle time and pays
    [k_spin_up] on the next access (mobile-disk power management). *)

val spec : t -> Specs.disk_spec
val capacity_bytes : t -> int
val sector_bytes : t -> int

type op = { start : Sim.Time.t; finish : Sim.Time.t }

val access : t -> now:Sim.Time.t -> lba:int -> bytes:int -> kind:[ `Read | `Write ] -> op
(** One request: queueing behind the previous request, possible spin-up,
    seek, rotation, transfer.
    @raise Invalid_argument if the address range is outside the disk. *)

val seek_time : t -> from_cyl:int -> to_cyl:int -> Sim.Time.span
(** Exposed for tests: the seek-curve model. *)

val rotation_period : t -> Sim.Time.span

val busy_until : t -> Sim.Time.t
(** When the last queued request completes. *)

val avg_access_estimate : t -> bytes:int -> Sim.Time.span
(** Average-seek + half-rotation + transfer: the textbook expectation,
    useful as a cross-check against simulated behaviour. *)

(** {1 Power and statistics} *)

val meter : t -> Power.Meter.t

val finish_accounting : t -> now:Sim.Time.t -> unit
(** Charge spindle/standby energy for the interval between the last request
    and [now].  Call once at the end of a run (intermediate requests account
    their own gaps). *)

val reads : t -> int
val writes : t -> int
val bytes_transferred : t -> int
val spin_ups : t -> int
val reset_stats : t -> unit
