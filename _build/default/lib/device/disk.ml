open Sim

let sector = 512

type t = {
  spec : Specs.disk_spec;
  spindown_timeout : Time.span option;
  rng : Rng.t;
  meter : Power.Meter.t;
  mutable head_cyl : int;
  mutable busy_until : Time.t;
  mutable last_finish : Time.t;
  mutable spinning : bool;
  c_reads : Stat.Counter.t;
  c_writes : Stat.Counter.t;
  c_bytes : Stat.Counter.t;
  c_spin_ups : Stat.Counter.t;
}

let create ?(spec = Specs.hp_kittyhawk) ?spindown_timeout ~rng () =
  {
    spec;
    spindown_timeout;
    rng;
    meter = Power.Meter.create ~label:"disk";
    head_cyl = 0;
    busy_until = Time.zero;
    last_finish = Time.zero;
    spinning = true;
    c_reads = Stat.Counter.create ();
    c_writes = Stat.Counter.create ();
    c_bytes = Stat.Counter.create ();
    c_spin_ups = Stat.Counter.create ();
  }

let spec t = t.spec
let capacity_bytes t = t.spec.Specs.k_capacity_bytes
let sector_bytes _ = sector

let rotation_period t =
  Time.span_s (60.0 /. t.spec.Specs.k_rpm)

let seek_time t ~from_cyl ~to_cyl =
  let d = abs (to_cyl - from_cyl) in
  if d = 0 then Time.span_zero
  else begin
    (* Affine-in-sqrt curve calibrated so a one-third-stroke seek costs the
       spec's average seek time. *)
    let s = t.spec in
    let third = float_of_int s.Specs.k_cylinders /. 3.0 in
    let single = Time.span_to_s s.Specs.k_single_track_seek in
    let avg = Time.span_to_s s.Specs.k_avg_seek in
    let slope = (avg -. single) /. sqrt third in
    Time.span_s (single +. (slope *. sqrt (float_of_int d)))
  end

let cylinder_of_lba t lba =
  let nsectors = capacity_bytes t / sector in
  lba * t.spec.Specs.k_cylinders / nsectors

type op = { start : Time.t; finish : Time.t }

(* Charge spindle energy for the gap since the previous request, deciding
   retroactively whether the disk spun down during it.  Returns the spin-up
   penalty the new request must pay. *)
let settle t ~now =
  if Time.( < ) now t.last_finish then Time.span_zero
  else begin
    let gap = Time.diff now t.last_finish in
    let s = t.spec in
    match t.spindown_timeout with
    | Some timeout when Time.span_to_ns gap > Time.span_to_ns timeout ->
      Power.Meter.charge_background t.meter ~watts:s.Specs.k_spinning_w timeout;
      let standby =
        Time.span_ns (Time.span_to_ns gap - Time.span_to_ns timeout)
      in
      Power.Meter.charge_background t.meter ~watts:s.Specs.k_standby_w standby;
      t.spinning <- false;
      Power.Meter.charge_power t.meter ~watts:s.Specs.k_spin_up_w s.Specs.k_spin_up;
      Stat.Counter.incr t.c_spin_ups;
      t.spinning <- true;
      s.Specs.k_spin_up
    | Some _ | None ->
      Power.Meter.charge_background t.meter ~watts:s.Specs.k_spinning_w gap;
      Time.span_zero
  end

let access t ~now ~lba ~bytes ~kind =
  if bytes < 0 then invalid_arg "Disk.access: negative size";
  if lba < 0 || (lba * sector) + bytes > capacity_bytes t then
    invalid_arg "Disk.access: address out of range";
  let spin_up = settle t ~now in
  let start = Time.max now t.busy_until in
  let target = cylinder_of_lba t lba in
  let seek = seek_time t ~from_cyl:t.head_cyl ~to_cyl:target in
  let rot =
    Time.span_ns (Rng.int t.rng (max 1 (Time.span_to_ns (rotation_period t))))
  in
  let xfer = Specs.access_time t.spec.Specs.k_transfer ~bytes in
  let dur = Time.span_add (Time.span_add (Time.span_add spin_up seek) rot) xfer in
  let finish = Time.add start dur in
  t.head_cyl <- target;
  t.busy_until <- finish;
  t.last_finish <- finish;
  Power.Meter.charge_power t.meter ~watts:1.0
    (Time.span_add seek xfer);
  (match kind with
  | `Read -> Stat.Counter.incr t.c_reads
  | `Write -> Stat.Counter.incr t.c_writes);
  Stat.Counter.add t.c_bytes bytes;
  { start; finish }

let avg_access_estimate t ~bytes =
  let half_rot = Time.span_scale (rotation_period t) 0.5 in
  Time.span_add
    (Time.span_add t.spec.Specs.k_avg_seek half_rot)
    (Specs.access_time t.spec.Specs.k_transfer ~bytes)

let busy_until t = t.busy_until
let meter t = t.meter

let finish_accounting t ~now = ignore (settle t ~now)

let reads t = Stat.Counter.value t.c_reads
let writes t = Stat.Counter.value t.c_writes
let bytes_transferred t = Stat.Counter.value t.c_bytes
let spin_ups t = Stat.Counter.value t.c_spin_ups

let reset_stats t =
  Stat.Counter.reset t.c_reads;
  Stat.Counter.reset t.c_writes;
  Stat.Counter.reset t.c_bytes;
  Stat.Counter.reset t.c_spin_ups;
  Power.Meter.reset t.meter
