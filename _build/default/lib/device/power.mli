(** Energy accounting.

    Each device owns a meter.  Operations charge *active* energy as they
    complete; *background* draw (DRAM refresh, disk spindle, flash standby) is
    charged by the machine model once it knows the elapsed interval.  All
    energy is in joules, power in watts. *)

module Meter : sig
  type t

  val create : label:string -> t
  val label : t -> string

  val charge : t -> joules:float -> unit
  (** Add active energy.  @raise Invalid_argument on a negative charge. *)

  val charge_power : t -> watts:float -> Sim.Time.span -> unit
  (** Add [watts] drawn over a duration. *)

  val active_joules : t -> float
  val background_joules : t -> float

  val charge_background : t -> watts:float -> Sim.Time.span -> unit
  (** Background draw, tracked separately from active energy. *)

  val total_joules : t -> float
  val reset : t -> unit
end

val watts_of_mw : float -> float
val joules : watts:float -> Sim.Time.span -> float
(** Energy drawn at constant power over a duration. *)
