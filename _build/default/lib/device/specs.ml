open Sim

type access_cost = { fixed : Time.span; per_byte_ns : float }

let access_time c ~bytes =
  if bytes < 0 then invalid_arg "Specs.access_time: negative size";
  Time.span_add c.fixed
    (Time.span_ns (int_of_float (Float.round (c.per_byte_ns *. float_of_int bytes))))

type economics = { dollars_per_mb : float; mb_per_cubic_inch : float }

type dram_spec = {
  d_read : access_cost;
  d_write : access_cost;
  d_active_mw_per_mb : float;
  d_refresh_mw_per_mb : float;
  d_econ : economics;
}

(* The paper anchors the cost comparison twice: a 20 MB DRAM package costs
   ten times a 20 MB disk, and a fixed budget buys 12 MB DRAM, 20 MB flash,
   or 120 MB disk (Section 4) — i.e. per-MB costs in the ratio 10 : 6 : 1.
   Anchoring flash at the quoted $50/MB gives DRAM ~$83/MB, disk ~$8.3/MB. *)
let nec_dram =
  {
    d_read = { fixed = Time.span_ns 100; per_byte_ns = 10.0 };
    d_write = { fixed = Time.span_ns 100; per_byte_ns = 10.0 };
    d_active_mw_per_mb = 5.0;
    d_refresh_mw_per_mb = 0.5;
    d_econ = { dollars_per_mb = 83.3; mb_per_cubic_inch = 15.0 };
  }

type flash_spec = {
  f_read : access_cost;
  f_write : access_cost;
  f_erase : Time.span;
  f_sector_bytes : int;
  f_endurance : int;
  f_active_mw_per_mb : float;
  f_idle_mw_per_mb : float;
  f_econ : economics;
}

let intel_flash =
  {
    (* "read access times in the 100-nanosecond per byte range and write
       times in the 10-microsecond per byte range" *)
    f_read = { fixed = Time.span_ns 250; per_byte_ns = 100.0 };
    f_write = { fixed = Time.span_us 4.0; per_byte_ns = 10_000.0 };
    f_erase = Time.span_ms 5.0;
    f_sector_bytes = 512;
    f_endurance = 100_000;
    f_active_mw_per_mb = 30.0;
    f_idle_mw_per_mb = 0.05;
    f_econ = { dollars_per_mb = 50.0; mb_per_cubic_inch = 15.2 };
  }

let sundisk_flash =
  {
    (* Disk-style controller: every access pays a command overhead, so reads
       are far slower than Intel's memory-mapped parts, while writes hide
       part of the program time behind the controller. *)
    f_read = { fixed = Time.span_us 300.0; per_byte_ns = 150.0 };
    f_write = { fixed = Time.span_us 300.0; per_byte_ns = 3_500.0 };
    f_erase = Time.span_ms 3.0;
    f_sector_bytes = 512;
    f_endurance = 100_000;
    f_active_mw_per_mb = 30.0;
    f_idle_mw_per_mb = 0.05;
    f_econ = { dollars_per_mb = 50.0; mb_per_cubic_inch = 15.2 };
  }

type disk_spec = {
  k_capacity_bytes : int;
  k_cylinders : int;
  k_single_track_seek : Time.span;
  k_avg_seek : Time.span;
  k_rpm : float;
  k_transfer : access_cost;
  k_spin_up : Time.span;
  k_spinning_w : float;
  k_standby_w : float;
  k_spin_up_w : float;
  k_econ : economics;
}

let hp_kittyhawk =
  {
    k_capacity_bytes = 20 * Units.mib;
    k_cylinders = 1024;
    k_single_track_seek = Time.span_ms 4.0;
    k_avg_seek = Time.span_ms 18.0;
    k_rpm = 5400.0;
    k_transfer = { fixed = Time.span_us 50.0; per_byte_ns = 1_000.0 };
    k_spin_up = Time.span_s 1.0;
    k_spinning_w = 1.5;
    k_standby_w = 0.015;
    k_spin_up_w = 3.0;
    k_econ = { dollars_per_mb = 8.3; mb_per_cubic_inch = 19.0 };
  }

let fujitsu_m2633 =
  {
    k_capacity_bytes = 45 * Units.mib;
    k_cylinders = 1546;
    k_single_track_seek = Time.span_ms 3.0;
    k_avg_seek = Time.span_ms 15.0;
    k_rpm = 3600.0;
    k_transfer = { fixed = Time.span_us 50.0; per_byte_ns = 700.0 };
    k_spin_up = Time.span_s 1.5;
    k_spinning_w = 2.0;
    k_standby_w = 0.02;
    k_spin_up_w = 4.0;
    k_econ = { dollars_per_mb = 6.0; mb_per_cubic_inch = 30.0 };
  }

let dram_improvement_per_year = 0.40
let disk_improvement_per_year = 0.25
let anchor_year = 1993
