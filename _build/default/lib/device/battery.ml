open Sim

type t = {
  capacity : float;
  backup_capacity : float;
  mutable primary : float;
  mutable backup : float;
  mutable unmet : float;
}

let create ?(backup_joules = 0.0) ~capacity_joules () =
  if capacity_joules <= 0.0 then invalid_arg "Battery.create: capacity <= 0";
  if backup_joules < 0.0 then invalid_arg "Battery.create: backup < 0";
  {
    capacity = capacity_joules;
    backup_capacity = backup_joules;
    primary = capacity_joules;
    backup = backup_joules;
    unmet = 0.0;
  }

let of_watt_hours ?(backup_wh = 0.0) wh =
  create ~backup_joules:(backup_wh *. 3600.0) ~capacity_joules:(wh *. 3600.0) ()

let drain t ~joules =
  if joules < 0.0 then invalid_arg "Battery.drain: negative";
  let from_primary = Float.min t.primary joules in
  t.primary <- t.primary -. from_primary;
  let rest = joules -. from_primary in
  let from_backup = Float.min t.backup rest in
  t.backup <- t.backup -. from_backup;
  t.unmet <- t.unmet +. (rest -. from_backup)

let primary_joules t = t.primary
let backup_joules t = t.backup
let exhausted t = t.primary <= 0.0 && t.backup <= 0.0
let on_backup t = t.primary <= 0.0 && t.backup > 0.0
let unmet_joules t = t.unmet
let swap_primary t = t.primary <- t.capacity

let holdup_time t ~draw_watts =
  if draw_watts <= 0.0 then invalid_arg "Battery.holdup_time: draw <= 0";
  Time.span_s ((t.primary +. t.backup) /. draw_watts)

let fraction_remaining t = t.primary /. t.capacity
