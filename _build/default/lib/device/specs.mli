(** 1993 storage-product parameters.

    These presets encode the numbers the paper's Section 2 quotes or implies
    for the products it compares: NEC 3.3 V low-power DRAM, Intel
    memory-mapped flash, SunDisk drive-replacement flash, the HP KittyHawk
    1.3-inch disk, and the Fujitsu M2633 2.5-inch disk.  Experiments depend on
    the *ratios* between these numbers, which are taken directly from the
    paper: flash reads in the 100 ns/byte range, flash writes two orders of
    magnitude slower, 512-byte erase sectors, 100,000 erase cycles, ~$50/MB
    flash, a 10:1 DRAM:disk cost ratio, 15 vs 19 MB/in³ densities, and
    milliwatt-range flash power against a watt-range spindle. *)

type access_cost = {
  fixed : Sim.Time.span;  (** Per-operation setup latency. *)
  per_byte_ns : float;  (** Streaming cost per byte transferred. *)
}

val access_time : access_cost -> bytes:int -> Sim.Time.span
(** [fixed + per_byte * bytes], rounded to whole nanoseconds. *)

(** {1 Economics and form factor} *)

type economics = {
  dollars_per_mb : float;
  mb_per_cubic_inch : float;
}

(** {1 DRAM} *)

type dram_spec = {
  d_read : access_cost;
  d_write : access_cost;
  d_active_mw_per_mb : float;  (** Draw while servicing an access. *)
  d_refresh_mw_per_mb : float;  (** Self-refresh (standby) draw. *)
  d_econ : economics;
}

val nec_dram : dram_spec
(** NEC 3.3 V DRAM with low-power self-refresh (paper ref [7]). *)

(** {1 Flash memory} *)

type flash_spec = {
  f_read : access_cost;
  f_write : access_cost;  (** Programming; roughly 100x slower per byte. *)
  f_erase : Sim.Time.span;  (** Per erase sector. *)
  f_sector_bytes : int;  (** Minimum erase unit (512 B range in 1993). *)
  f_endurance : int;  (** Guaranteed erase cycles per sector. *)
  f_active_mw_per_mb : float;
  f_idle_mw_per_mb : float;
  f_econ : economics;
}

val intel_flash : flash_spec
(** Intel memory-mapped flash: very fast reads, slow writes (paper ref [6]). *)

val sundisk_flash : flash_spec
(** SunDisk drive-replacement flash: balanced read/write through a
    disk-style controller — slower reads than Intel, faster effective
    writes (paper ref [13]). *)

(** {1 Magnetic disk} *)

type disk_spec = {
  k_capacity_bytes : int;
  k_cylinders : int;
  k_single_track_seek : Sim.Time.span;
  k_avg_seek : Sim.Time.span;  (** Average (one-third stroke) seek. *)
  k_rpm : float;
  k_transfer : access_cost;  (** Media transfer once positioned. *)
  k_spin_up : Sim.Time.span;
  k_spinning_w : float;  (** Spindle + electronics while rotating. *)
  k_standby_w : float;  (** Spun down. *)
  k_spin_up_w : float;  (** Peak draw during spin-up. *)
  k_econ : economics;
}

val hp_kittyhawk : disk_spec
(** HP KittyHawk C3013A 1.3-inch, 20 MB class (paper ref [5]). *)

val fujitsu_m2633 : disk_spec
(** Fujitsu M2633 2.5-inch, 45 MB class (paper ref [4]). *)

(** {1 Trend anchors (Section 2)} *)

val dram_improvement_per_year : float
(** MB/$ and MB/in³ growth rate for semiconductor memory: 40 %/year. *)

val disk_improvement_per_year : float
(** The same rates for magnetic disk: 25 %/year. *)

val anchor_year : int
(** The year the preset numbers describe: 1993. *)
