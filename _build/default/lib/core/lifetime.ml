type inputs = {
  endurance : int;
  total_sectors : int;
  sector_bytes : int;
  flash_write_bytes_per_day : float;
  write_amplification : float;
  wear_skew : float;
}

let years i =
  if i.endurance <= 0 || i.total_sectors <= 0 || i.sector_bytes <= 0 then
    invalid_arg "Lifetime.years: non-positive geometry";
  if i.wear_skew < 1.0 then invalid_arg "Lifetime.years: skew < 1";
  if i.flash_write_bytes_per_day <= 0.0 then infinity
  else begin
    (* Total sector-erases the device can absorb before its hottest sector
       dies, then how many the workload performs per day. *)
    let budget =
      float_of_int i.endurance *. float_of_int i.total_sectors /. i.wear_skew
    in
    let erases_per_day =
      i.flash_write_bytes_per_day *. i.write_amplification
      /. float_of_int i.sector_bytes
    in
    budget /. erases_per_day /. 365.25
  end

let of_run ~flash ~stats ~evenness ~elapsed =
  let days = Sim.Time.span_to_s elapsed /. 86_400.0 in
  let sector_bytes = Device.Flash.sector_bytes flash in
  let flushed_bytes = stats.Storage.Manager.blocks_flushed * sector_bytes in
  let skew =
    if evenness.Storage.Wear.mean_erases <= 0.0 then 1.0
    else
      Float.max 1.0
        (float_of_int evenness.Storage.Wear.max_erases
        /. evenness.Storage.Wear.mean_erases)
  in
  years
    {
      endurance = Device.Flash.endurance flash;
      total_sectors = Device.Flash.nsectors flash;
      sector_bytes;
      flash_write_bytes_per_day =
        (if days <= 0.0 then 0.0 else float_of_int flushed_bytes /. days);
      write_amplification = stats.Storage.Manager.write_amplification;
      wear_skew = skew;
    }
