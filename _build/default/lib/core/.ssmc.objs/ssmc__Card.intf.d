lib/core/card.mli: Device Format Fs Sim Storage
