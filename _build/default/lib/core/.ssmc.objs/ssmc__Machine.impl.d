lib/core/machine.ml: Config Device Engine Fmt Fs Lifetime List Option Rng Sim Stat Storage Time Trace
