lib/core/config.ml: Device Fs Sim Storage Time Units
