lib/core/recovery_box.ml: Char Fmt Hashtbl List Sim String
