lib/core/machine.mli: Config Device Format Fs Sim Storage Trace
