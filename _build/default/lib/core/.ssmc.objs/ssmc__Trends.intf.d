lib/core/trends.mli:
