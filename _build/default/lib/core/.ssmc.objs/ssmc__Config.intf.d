lib/core/config.mli: Device Fs Sim Storage
