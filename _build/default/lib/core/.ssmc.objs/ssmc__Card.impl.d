lib/core/card.ml: Device Engine Fmt Fs Hashtbl List Printf Sim Storage String Time Units
