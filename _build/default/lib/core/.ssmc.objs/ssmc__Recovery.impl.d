lib/core/recovery.ml: Device Fmt Sim Storage
