lib/core/recovery.mli: Device Format Storage
