lib/core/trends.ml: Device Float
