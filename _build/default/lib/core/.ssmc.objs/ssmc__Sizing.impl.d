lib/core/sizing.ml: Config Device Float Fmt List Machine Option Printf Rng Sim Stat Storage Time Trace
