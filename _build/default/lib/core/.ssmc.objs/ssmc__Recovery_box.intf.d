lib/core/recovery_box.mli: Format Sim
