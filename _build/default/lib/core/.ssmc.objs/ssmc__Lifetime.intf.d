lib/core/lifetime.mli: Device Sim Storage
