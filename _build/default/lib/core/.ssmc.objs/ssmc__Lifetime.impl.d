lib/core/lifetime.ml: Device Float Sim Storage
