lib/core/sizing.mli: Format Sim Trace
