(* Items carry a checksum over (key, bytes, seq).  Corruption flips the
   payload without updating the checksum, which is exactly what recovery
   detects. *)

type item = {
  key : string;
  mutable bytes : int;
  mutable seq : int;
  mutable checksum : int;
  mutable order : int;  (** Insertion order, for bounded-capacity eviction. *)
}

type t = {
  capacity : int;
  table : (string, item) Hashtbl.t;
  mutable next_seq : int;
  mutable next_order : int;
}

let create ?(capacity_items = 256) () =
  if capacity_items <= 0 then invalid_arg "Recovery_box.create: capacity <= 0";
  { capacity = capacity_items; table = Hashtbl.create 64; next_seq = 0; next_order = 0 }

let capacity t = t.capacity
let size t = Hashtbl.length t.table

let checksum_of ~key ~bytes ~seq =
  (* A small FNV-1a over the logical content. *)
  let h = ref 0x3bf29ce484222325 in
  let mix byte = h := (!h lxor byte) * 0x100000001b3 in
  String.iter (fun c -> mix (Char.code c)) key;
  mix (bytes land 0xff);
  mix ((bytes lsr 8) land 0xff);
  mix (seq land 0xff);
  mix ((seq lsr 8) land 0xff);
  !h

let evict_oldest t =
  let oldest =
    Hashtbl.fold
      (fun _ item acc ->
        match acc with
        | Some best when best.order <= item.order -> acc
        | Some _ | None -> Some item)
      t.table None
  in
  match oldest with Some item -> Hashtbl.remove t.table item.key | None -> ()

let put t ~key ~bytes =
  if bytes < 0 then invalid_arg "Recovery_box.put: negative size";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match Hashtbl.find_opt t.table key with
  | Some item ->
    (* Atomic update: compute the new checksum against the new content and
       install both together. *)
    item.bytes <- bytes;
    item.seq <- seq;
    item.checksum <- checksum_of ~key ~bytes ~seq
  | None ->
    if size t >= t.capacity then evict_oldest t;
    let order = t.next_order in
    t.next_order <- order + 1;
    Hashtbl.replace t.table key
      { key; bytes; seq; checksum = checksum_of ~key ~bytes ~seq; order }

let intact item =
  item.checksum = checksum_of ~key:item.key ~bytes:item.bytes ~seq:item.seq

let get t ~key =
  match Hashtbl.find_opt t.table key with
  | Some item when intact item -> Some item.bytes
  | Some _ | None -> None

let delete t ~key =
  if Hashtbl.mem t.table key then begin
    Hashtbl.remove t.table key;
    true
  end
  else false

let stored_bytes t = Hashtbl.fold (fun _ item acc -> acc + item.bytes) t.table 0

let crash t ~rng ~corruption_rate =
  if corruption_rate < 0.0 || corruption_rate > 1.0 then
    invalid_arg "Recovery_box.crash: corruption_rate not a probability";
  Hashtbl.iter
    (fun _ item ->
      if Sim.Rng.bernoulli rng ~p:corruption_rate then
        (* A wild store: the payload changes under the checksum. *)
        item.bytes <- item.bytes lxor (1 + Sim.Rng.int rng 1024))
    t.table

type recovery = { intact : int; corrupted : int; salvaged_bytes : int }

let recover t =
  let damaged =
    Hashtbl.fold (fun key item acc -> if intact item then acc else key :: acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) damaged;
  let salvaged = stored_bytes t in
  { intact = size t; corrupted = List.length damaged; salvaged_bytes = salvaged }

let pp_recovery ppf r =
  Fmt.pf ppf "intact=%d corrupted=%d salvaged=%a" r.intact r.corrupted Fmt.byte_size
    r.salvaged_bytes
