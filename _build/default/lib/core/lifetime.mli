(** Flash-lifetime estimation.

    A flash device dies (for practical purposes) when its most-worn sectors
    exhaust their erase budget.  Lifetime therefore depends on four things
    the storage manager controls or observes: the raw write rate that
    reaches flash, the cleaner's write amplification, the evenness of wear,
    and the device's size and endurance.  This estimator converts measured
    simulation statistics into calendar lifetime — the number the paper's
    "prolong the life of flash memory" claims are about. *)

type inputs = {
  endurance : int;  (** Erase cycles per sector. *)
  total_sectors : int;
  sector_bytes : int;
  flash_write_bytes_per_day : float;
      (** Client bytes flushed to flash per day (after buffer absorption). *)
  write_amplification : float;  (** >= 1; cleaner copies inflate writes. *)
  wear_skew : float;
      (** max erase count / mean erase count; 1.0 = perfectly even. *)
}

val years : inputs -> float
(** Estimated years until the most-worn sector exceeds its endurance.
    [infinity] when nothing is written.
    @raise Invalid_argument on non-positive geometry or skew < 1. *)

val of_run :
  flash:Device.Flash.t ->
  stats:Storage.Manager.stats ->
  evenness:Storage.Wear.evenness ->
  elapsed:Sim.Time.span ->
  float
(** Convenience: derive {!inputs} from a finished simulation run and
    estimate.  Uses the run's flush rate, amplification, and observed wear
    spread. *)
