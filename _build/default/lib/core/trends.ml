type tech = Dram | Flash | Disk

let tech_name = function Dram -> "DRAM" | Flash -> "flash" | Disk -> "disk"

let anchor_year = float_of_int Device.Specs.anchor_year

(* 1993 anchors from the device presets. *)
let base_cost = function
  | Dram -> Device.Specs.(nec_dram.d_econ.dollars_per_mb)
  | Flash -> Device.Specs.(intel_flash.f_econ.dollars_per_mb)
  | Disk -> Device.Specs.(hp_kittyhawk.k_econ.dollars_per_mb)

let base_density = function
  | Dram -> Device.Specs.(nec_dram.d_econ.mb_per_cubic_inch)
  | Flash -> Device.Specs.(intel_flash.f_econ.mb_per_cubic_inch)
  | Disk -> Device.Specs.(hp_kittyhawk.k_econ.mb_per_cubic_inch)

(* Annual $/MB decline: the reciprocal of the MB/$ growth the paper quotes,
   with flash ramping faster than mature DRAM. *)
let default_flash_improvement = 0.45

let cost_decline ~flash_improvement = function
  | Dram -> 1.0 /. (1.0 +. Device.Specs.dram_improvement_per_year)
  | Flash -> 1.0 /. (1.0 +. flash_improvement)
  | Disk -> 1.0 /. (1.0 +. Device.Specs.disk_improvement_per_year)

let density_growth = function
  | Dram | Flash -> 1.0 +. Device.Specs.dram_improvement_per_year
  | Disk -> 1.0 +. Device.Specs.disk_improvement_per_year

(* The fixed cost of a small drive's mechanism, eroding 10 %/yr. *)
let disk_floor_1993 = 140.0
let disk_floor_decline = 0.90

let years_since year = year -. anchor_year

let raw_cost_per_mb ?(flash_improvement = default_flash_improvement) tech ~year =
  base_cost tech *. Float.pow (cost_decline ~flash_improvement tech) (years_since year)

let cost_per_mb ?flash_improvement tech ~year ~capacity_mb =
  if capacity_mb <= 0.0 then invalid_arg "Trends.cost_per_mb: capacity <= 0";
  let per_mb = raw_cost_per_mb ?flash_improvement tech ~year in
  match tech with
  | Dram | Flash -> per_mb
  | Disk ->
    let floor = disk_floor_1993 *. Float.pow disk_floor_decline (years_since year) in
    Float.max per_mb (floor /. capacity_mb)

let configuration_cost ?flash_improvement tech ~year ~capacity_mb =
  cost_per_mb ?flash_improvement tech ~year ~capacity_mb *. capacity_mb

let density_mb_per_in3 tech ~year =
  base_density tech *. Float.pow (density_growth tech) (years_since year)

(* Monthly scan for the first sign change. *)
let search ~f =
  let start = anchor_year and stop = 2030.0 in
  let step = 1.0 /. 12.0 in
  let rec go year =
    if year > stop then None else if f year <= 0.0 then Some year else go (year +. step)
  in
  go start

let cost_crossover ?flash_improvement ~cheaper ~pricier ~capacity_mb () =
  search ~f:(fun year ->
      cost_per_mb ?flash_improvement pricier ~year ~capacity_mb
      -. cost_per_mb ?flash_improvement cheaper ~year ~capacity_mb)

let density_crossover ~slower ~faster =
  search ~f:(fun year -> density_mb_per_in3 slower ~year -. density_mb_per_in3 faster ~year)

let capacity_affordable ?flash_improvement tech ~year ~budget =
  if budget <= 0.0 then 0.0
  else begin
    match tech with
    | Dram | Flash -> budget /. raw_cost_per_mb ?flash_improvement tech ~year
    | Disk ->
      let floor = disk_floor_1993 *. Float.pow disk_floor_decline (years_since year) in
      if budget < floor then 0.0 else budget /. raw_cost_per_mb tech ~year
  end
