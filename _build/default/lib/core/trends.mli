(** Technology-trend extrapolation (Section 2).

    The paper's forecast rests on compound improvement rates: semiconductor
    memory (DRAM and flash) gains roughly 40 % per year in both MB/$ and
    MB/in³, magnetic disk roughly 25 % per year, so the curves must cross.
    Two refinements the paper's sources imply are modeled explicitly:

    - {e flash cost} was falling faster than DRAM's in the early 1990s as
      the technology ramped ("manufacturers expect flash memory densities
      to match and follow the increases in DRAM densities"); we use 45 %/yr
      for flash MB/$.
    - {e small disks have a price floor}: a drive cannot be cheaper than
      its fixed mechanism (~$140 in 1993, eroding slowly), so for small
      capacities the effective $/MB is [max (per_mb, floor / capacity)].
      This floor is what makes "flash matches disk for 40 MB
      configurations by 1996" (the paper's quoted estimate) while large
      disks stay cheaper for years longer. *)

type tech = Dram | Flash | Disk

val tech_name : tech -> string

val default_flash_improvement : float
(** Flash MB/$ growth per year used when [flash_improvement] is omitted:
    0.45, the memory-trend figure.  The paper's "by 1996" quote
    (an Intel estimate) implies roughly 1.0 — flash halving in $/MB each
    year through its ramp; pass that to reproduce the quote. *)

val cost_per_mb :
  ?flash_improvement:float -> tech -> year:float -> capacity_mb:float -> float
(** Dollars per megabyte of a [capacity_mb]-sized configuration. *)

val configuration_cost :
  ?flash_improvement:float -> tech -> year:float -> capacity_mb:float -> float
(** Total dollars for the configuration. *)

val density_mb_per_in3 : tech -> year:float -> float

val cost_crossover :
  ?flash_improvement:float ->
  cheaper:tech -> pricier:tech -> capacity_mb:float -> unit -> float option
(** The year (fractional) at which [pricier]'s cost per MB falls to meet
    [cheaper]'s for the given capacity, searched over 1993–2030; [None] if
    they never cross in that window.  Note the argument order describes
    the 1993 state. *)

val density_crossover : slower:tech -> faster:tech -> float option
(** The year [faster]'s volumetric density overtakes [slower]'s. *)

val capacity_affordable :
  ?flash_improvement:float -> tech -> year:float -> budget:float -> float
(** Megabytes a budget buys (ignoring the granularity of real parts);
    inverts the price floor for disks. *)
