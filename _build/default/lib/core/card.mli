(** Removable flash memory cards.

    The machines the paper points at shipped storage and even software on
    removable flash cards — "the Hewlett-Packard OmniBook is available
    with a 10-megabyte flash memory card as its only source of secondary
    storage", with "bundled software shipped in removable memory cards and
    executed in place".  A card couples a flash device with its own
    storage manager and memory-resident file system; the host inserts it,
    uses it (including mapping program text straight off it), and ejects
    it.

    Eject semantics are where removability bites: the card's write buffer
    lives in the *host's* DRAM.  An orderly eject flushes it first; a
    surprise eject (the user pulls the card) loses the buffered blocks,
    and the next insertion recovers the flash-resident state by the
    remount scan. *)

type t

val create :
  ?name:string ->
  ?nbanks:int ->
  ?spec:Device.Specs.flash_spec ->
  ?manager:Storage.Manager.config ->
  size_mb:int ->
  engine:Sim.Engine.t ->
  host_dram:Device.Dram.t ->
  unit ->
  t
(** A fresh (formatted) card, inserted into the host that owns [engine]
    and [host_dram]. *)

val name : t -> string
val flash : t -> Device.Flash.t
val size_bytes : t -> int

val fs : t -> Fs.Memfs.t
(** The card's file system.  @raise Invalid_argument if ejected. *)

val manager : t -> Storage.Manager.t
(** @raise Invalid_argument if ejected. *)

val inserted : t -> bool

type eject_report = {
  flushed_blocks : int;  (** Pushed to the card by an orderly eject. *)
  lost_blocks : int;  (** Dropped with the host buffer by a surprise eject. *)
  eject_latency : Sim.Time.span;  (** Time spent flushing before release. *)
}

val eject : ?surprise:bool -> t -> eject_report
(** Detach the card.  Orderly (default): flush the host-side buffer to the
    card first; nothing is lost.  [surprise]: the buffer's contents are
    gone.  After ejecting, {!fs} and {!manager} refuse to serve.
    @raise Invalid_argument if already ejected. *)

type insert_report = {
  scan_time : Sim.Time.span;  (** The remount scan of the card's flash. *)
  blocks_recovered : int;
}

val insert : t -> insert_report
(** Re-attach an ejected card: scans its sector headers, rebuilds the
    storage-manager state, and rebuilds the namespace from the checkpoint
    the card carries (written at the last orderly eject).  Files whose
    blocks did not survive — dirty at a surprise eject — are dropped;
    surviving blocks the checkpoint does not reach are scavenged into
    ["/recovered-<n>"] files so nothing readable is silently discarded.
    @raise Invalid_argument if already inserted. *)

val pp_eject_report : Format.formatter -> eject_report -> unit
val pp_insert_report : Format.formatter -> insert_report -> unit
