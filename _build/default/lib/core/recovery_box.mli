(** A recovery box: crash-surviving state in battery-backed DRAM.

    Section 3.1 notes that DRAM can safely hold file-system state "with
    appropriate care to ensure that an untimely crash is unlikely to
    corrupt data", citing Baker & Sullivan's recovery box (USENIX '92): a
    small, strictly-disciplined region of battery-backed memory holding
    the state a system needs to restart quickly — session tables, caches
    of recently-used metadata, the write buffer's index.

    The discipline is what makes it trustworthy after a crash: every item
    is stored with a checksum and a sequence number, writes are performed
    item-at-a-time (never leaving a half-updated structure), and recovery
    verifies each item before believing it.  This module models that
    discipline and lets experiments inject the failure it defends against:
    memory corrupted by a wild store during the crash.

    Space is bounded; inserting beyond capacity evicts the oldest items —
    a recovery box caches recovery state, it is not a log. *)

type t

val create : ?capacity_items:int -> unit -> t
(** Default capacity: 256 items.
    @raise Invalid_argument if the capacity is not positive. *)

val capacity : t -> int
val size : t -> int

val put : t -> key:string -> bytes:int -> unit
(** Insert or update an item ([bytes] models its payload size).  Updates
    are atomic: an interrupted update leaves the previous version. *)

val get : t -> key:string -> int option
(** The item's payload size, if present and intact. *)

val delete : t -> key:string -> bool

val stored_bytes : t -> int
(** Total payload held (for sizing the battery-backed region). *)

(** {1 Crashes and recovery} *)

val crash : t -> rng:Sim.Rng.t -> corruption_rate:float -> unit
(** Simulate an untimely crash: each item independently has its payload
    corrupted with probability [corruption_rate] (a wild store during the
    failure).  Checksums are what let recovery notice. *)

type recovery = {
  intact : int;  (** Items that passed their checksum. *)
  corrupted : int;  (** Items detected as damaged and discarded. *)
  salvaged_bytes : int;
}

val recover : t -> recovery
(** Post-crash scan: verify every item, discard the damaged ones (they
    are gone from subsequent {!get}s), and report the salvage. *)

val pp_recovery : Format.formatter -> recovery -> unit
