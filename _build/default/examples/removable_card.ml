(* Removable flash cards, the way the OmniBook shipped software: create a
   card, fill it, eject it properly (or yank it), and reinsert.

     dune exec examples/removable_card.exe *)

open Sim

let ok = function
  | Ok v -> v
  | Error e -> Fmt.failwith "card: %a" Fs.Fs_error.pp e

let () =
  let engine = Engine.create () in
  let host_dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let card = Ssmc.Card.create ~name:"omnibook-card" ~size_mb:10 ~engine ~host_dram () in

  Fmt.pr "A %a flash card is inserted.  Installing software and notes...@."
    Fmt.byte_size (Ssmc.Card.size_bytes card);
  let fs = Ssmc.Card.fs card in
  ignore (ok (Fs.Memfs.mkdir fs "/apps"));
  ignore (ok (Fs.Memfs.create fs "/apps/word-processor"));
  ignore (ok (Fs.Memfs.write fs "/apps/word-processor" ~offset:0 ~bytes:(256 * 1024)));
  ignore (ok (Fs.Memfs.create fs "/meeting-notes"));
  ignore (ok (Fs.Memfs.write fs "/meeting-notes" ~offset:0 ~bytes:4096));

  Fmt.pr "@.Orderly eject (flush, checkpoint, release):@.";
  let report = Ssmc.Card.eject card in
  Fmt.pr "  %a@." Ssmc.Card.pp_eject_report report;

  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 5.0));
  Fmt.pr "@.Reinserting (the header scan rebuilds the card's state):@.";
  let insert = Ssmc.Card.insert card in
  Fmt.pr "  %a@." Ssmc.Card.pp_insert_report insert;
  let fs = Ssmc.Card.fs card in
  Fmt.pr "  /apps/word-processor: %a@." Fmt.byte_size
    (ok (Fs.Memfs.file_size fs "/apps/word-processor"));
  Fmt.pr "  /meeting-notes:       %a@." Fmt.byte_size
    (ok (Fs.Memfs.file_size fs "/meeting-notes"));

  Fmt.pr "@.Now the user edits a note and yanks the card mid-thought:@.";
  ignore (ok (Fs.Memfs.write fs "/meeting-notes" ~offset:0 ~bytes:1024));
  let report = Ssmc.Card.eject ~surprise:true card in
  Fmt.pr "  %a@." Ssmc.Card.pp_eject_report report;
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 5.0));
  let insert = Ssmc.Card.insert card in
  Fmt.pr "  after reinsert: %a@." Ssmc.Card.pp_insert_report insert;
  let fs = Ssmc.Card.fs card in
  Fmt.pr "  /meeting-notes rolled back to its last flushed version: %a@." Fmt.byte_size
    (ok (Fs.Memfs.file_size fs "/meeting-notes"));
  Fmt.pr
    "@.The dirty blocks lived in the host's write buffer, not on the card: a surprise@.\
     eject loses exactly that window, and the checkpointed state survives.@."
