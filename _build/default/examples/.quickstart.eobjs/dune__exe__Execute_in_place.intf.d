examples/execute_in_place.mli:
