examples/wear_and_banks.ml: Array Device Engine Fmt List Rng Sim Stat Storage Time Units
