examples/quickstart.mli:
