examples/pda_daily_use.mli:
