examples/quickstart.ml: Fmt Rng Sim Ssmc Stat Storage Time Trace
