examples/write_buffering.ml: Fmt List Option Printf Rng Sim Ssmc Stat Storage Table Time Trace
