examples/write_buffering.mli:
