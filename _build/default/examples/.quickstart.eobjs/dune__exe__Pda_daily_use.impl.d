examples/pda_daily_use.ml: Device Fmt Fs List Option Rng Sim Ssmc Time Trace
