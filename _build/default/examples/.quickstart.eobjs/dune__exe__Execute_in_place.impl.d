examples/execute_in_place.ml: Device Engine Fmt List Rng Sim Storage Time Units Vmem
