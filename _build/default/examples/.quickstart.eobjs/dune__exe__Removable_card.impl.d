examples/removable_card.ml: Device Engine Fmt Fs Sim Ssmc Time Units
