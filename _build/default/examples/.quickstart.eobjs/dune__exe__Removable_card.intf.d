examples/removable_card.mli:
