examples/wear_and_banks.mli:
