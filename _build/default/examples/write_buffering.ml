(* The Section 3.3 headline claim, hands-on: "as little as one megabyte of
   battery-backed RAM can reduce write traffic by 40 to 50%".

     dune exec examples/write_buffering.exe *)

open Sim

let () =
  let duration = Time.span_s 600.0 in
  let trace =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:7) ~duration
  in
  let death =
    Trace.Stats.write_death trace.Trace.Synth.records ~window:(Time.span_s 30.0)
  in
  Fmt.pr
    "Sprite-calibrated workload: %a written; %.0f%% of those bytes are overwritten or@.\
     deleted within 30 seconds - data that never needs to reach flash at all.@.@."
    Fmt.byte_size death.Trace.Stats.written_bytes
    (100.0 *. death.Trace.Stats.dead_fraction);

  let table =
    Table.create ~title:"write traffic to flash vs buffer size (30s writeback delay)"
      ~columns:
        [
          ("buffer", Table.Right);
          ("flash writes", Table.Right);
          ("reduction", Table.Right);
          ("mean write latency", Table.Right);
        ]
  in
  List.iter
    (fun kib ->
      let manager =
        {
          Storage.Manager.default_config with
          Storage.Manager.buffer =
            {
              Storage.Write_buffer.default_config with
              Storage.Write_buffer.capacity_blocks = kib * 1024 / 512;
            };
        }
      in
      let machine =
        Ssmc.Machine.create (Ssmc.Config.solid_state ~flash_mb:24 ~dram_mb:16 ~manager ())
      in
      Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
      let result = Ssmc.Machine.run machine trace.Trace.Synth.records in
      let stats = Option.get result.Ssmc.Machine.manager_stats in
      Table.add_row table
        [
          Table.cell_bytes (kib * 1024);
          Table.cell_bytes (512 * stats.Storage.Manager.blocks_flushed);
          Table.cell_pct stats.Storage.Manager.write_reduction;
          Printf.sprintf "%.0fus" (Stat.Summary.mean result.Ssmc.Machine.write_latency);
        ])
    [ 0; 256; 1024; 4096 ];
  Table.print table;
  Fmt.pr
    "Because the DRAM is battery-backed, the buffered data is as stable as flash:@.\
     nothing is lost unless both the primary and the lithium backup battery die.@."
