(* Quickstart: build the paper's solid-state machine and the conventional
   disk machine, run the same engineering workload on both, and compare.

     dune exec examples/quickstart.exe *)

open Sim

let () =
  (* One hour of a Sprite-calibrated engineering workload. *)
  let duration = Time.span_s 600.0 in
  let trace =
    Trace.Synth.generate Trace.Workloads.engineering ~rng:(Rng.create ~seed:1)
      ~duration
  in
  let summary = Trace.Stats.summarize trace.Trace.Synth.records in
  Fmt.pr "workload: %a@." Trace.Stats.pp_summary summary;

  let run cfg =
    let machine = Ssmc.Machine.create cfg in
    Ssmc.Machine.preload machine trace.Trace.Synth.initial_files;
    let result = Ssmc.Machine.run machine trace.Trace.Synth.records in
    (machine, result)
  in

  let _solid, solid_result = run (Ssmc.Config.solid_state ()) in
  let _conv, conv_result = run (Ssmc.Config.conventional ()) in

  Fmt.pr "@.== solid-state (DRAM + flash, no disk) ==@.%a@." Ssmc.Machine.pp_result
    solid_result;
  (match solid_result.Ssmc.Machine.manager_stats with
  | Some stats -> Fmt.pr "storage manager: %a@." Storage.Manager.pp_stats stats
  | None -> ());

  Fmt.pr "@.== conventional (DRAM + disk) ==@.%a@." Ssmc.Machine.pp_result conv_result;

  let p50 h = Stat.Histogram.quantile h 0.5 in
  Fmt.pr "@.typical (median) operation latency:@.";
  Fmt.pr "  reads : %8.1fus vs %8.1fus  (%.0fx)@."
    (p50 solid_result.Ssmc.Machine.read_hist_us)
    (p50 conv_result.Ssmc.Machine.read_hist_us)
    (p50 conv_result.Ssmc.Machine.read_hist_us
    /. p50 solid_result.Ssmc.Machine.read_hist_us);
  Fmt.pr "  writes: %8.1fus vs %8.1fus  (%.0fx)@."
    (p50 solid_result.Ssmc.Machine.write_hist_us)
    (p50 conv_result.Ssmc.Machine.write_hist_us)
    (p50 conv_result.Ssmc.Machine.write_hist_us
    /. p50 solid_result.Ssmc.Machine.write_hist_us);
  Fmt.pr "energy: solid %.1fJ vs conventional %.1fJ@."
    solid_result.Ssmc.Machine.energy_j conv_result.Ssmc.Machine.energy_j
