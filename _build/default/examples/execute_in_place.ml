(* Section 3.2's execute-in-place, the way the HP OmniBook shipped its
   bundled software: program text lives in flash and runs from there.

     dune exec examples/execute_in_place.exe *)

open Sim

let () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(8 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager =
    Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram
  in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 1024; swap = Vmem.Vm.No_swap }
      ~engine ~manager
  in
  let word_processor =
    { Vmem.Exec.prog_name = "word-processor"; text_bytes = 512 * 1024;
      data_bytes = 64 * 1024 }
  in
  Fmt.pr "Installing %s (%a of text) into flash, as a memory card would ship it...@."
    word_processor.Vmem.Exec.prog_name Fmt.byte_size
    word_processor.Vmem.Exec.text_bytes;
  let blocks = Vmem.Exec.install_text manager word_processor in
  (* Let the install finish before the user taps the icon. *)
  let busy = ref (Engine.now engine) in
  for bank = 0 to Device.Flash.nbanks flash - 1 do
    busy := Time.max !busy (Device.Flash.bank_busy_until flash ~bank)
  done;
  Engine.run_until engine (Time.add !busy (Time.span_s 1.0));

  Fmt.pr "@.Launching three ways:@.";
  List.iter
    (fun strategy ->
      let launched = Vmem.Exec.launch vm word_processor ~text_blocks:blocks strategy in
      let runtime =
        Vmem.Exec.run vm launched ~rng:(Rng.create ~seed:3) ~fetches:10_000
      in
      Fmt.pr "  %-17s launch %-10s text in DRAM %-8s then 10k fetches in %a@."
        (Vmem.Exec.strategy_name strategy)
        (Fmt.str "%a" Time.pp_span launched.Vmem.Exec.launch_latency)
        (Fmt.str "%a" Fmt.byte_size launched.Vmem.Exec.text_dram_bytes)
        Time.pp_span runtime)
    [
      Vmem.Exec.Execute_in_place;
      Vmem.Exec.Copy_to_dram;
      Vmem.Exec.Load_from_disk (Device.Disk.create ~rng:(Rng.create ~seed:4) ());
    ];
  Fmt.pr
    "@.XIP starts instantly and leaves all of DRAM free for data; the copies pay@.\
     tens to hundreds of milliseconds and duplicate the text.  Flash fetches cost@.\
     a few microseconds more than DRAM - the price of running in place.@."
