(* Removable flash cards: eject/insert lifecycles. *)
open Sim

let make () =
  let engine = Engine.create () in
  let host_dram = Device.Dram.create ~size_bytes:(2 * Units.mib) ~battery_backed:true () in
  let card =
    Ssmc.Card.create ~name:"test-card" ~size_mb:2
      ~manager:{ Storage.Manager.default_config with Storage.Manager.segment_sectors = 8 }
      ~engine ~host_dram ()
  in
  (engine, card)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "card fs: %a" Fs.Fs_error.pp e

let advance engine span = Engine.run_until engine (Time.add (Engine.now engine) span)

let populate card =
  let fs = Ssmc.Card.fs card in
  ignore (ok (Fs.Memfs.mkdir fs "/apps"));
  ignore (ok (Fs.Memfs.create fs "/apps/organizer"));
  ignore (ok (Fs.Memfs.write fs "/apps/organizer" ~offset:0 ~bytes:8192));
  ignore (ok (Fs.Memfs.create fs "/notes"));
  ignore (ok (Fs.Memfs.write fs "/notes" ~offset:0 ~bytes:2048))

let test_orderly_eject_and_reinsert () =
  let engine, card = make () in
  populate card;
  Alcotest.(check bool) "inserted" true (Ssmc.Card.inserted card);
  let eject = Ssmc.Card.eject card in
  Alcotest.(check int) "nothing lost" 0 eject.Ssmc.Card.lost_blocks;
  Alcotest.(check bool) "dirty data flushed" true (eject.Ssmc.Card.flushed_blocks > 0);
  Alcotest.(check bool) "flush took flash time" true
    (Time.span_to_ms eject.Ssmc.Card.eject_latency > 1.0);
  Alcotest.(check bool) "ejected" false (Ssmc.Card.inserted card);
  Alcotest.check_raises "fs refuses while ejected"
    (Invalid_argument "Card test-card: not inserted") (fun () ->
      ignore (Ssmc.Card.fs card));
  advance engine (Time.span_s 2.0);
  let insert = Ssmc.Card.insert card in
  Alcotest.(check bool) "scan charged" true
    (Time.span_to_us insert.Ssmc.Card.scan_time > 10.0);
  let fs = Ssmc.Card.fs card in
  Alcotest.(check int) "organizer intact" 8192 (ok (Fs.Memfs.file_size fs "/apps/organizer"));
  Alcotest.(check int) "notes intact" 2048 (ok (Fs.Memfs.file_size fs "/notes"));
  (* Data reads come from the card's flash. *)
  Alcotest.(check bool) "reads at flash speed" true
    (Time.span_to_us (ok (Fs.Memfs.read fs "/notes" ~offset:0 ~bytes:512)) > 10.0);
  match Fs.Memfs.check fs with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fsck after reinsert: %s" msg

let test_surprise_eject_loses_dirty_data () =
  let engine, card = make () in
  populate card;
  (* First an orderly cycle so a checkpoint exists on the card. *)
  ignore (Ssmc.Card.eject card);
  advance engine (Time.span_s 1.0);
  ignore (Ssmc.Card.insert card);
  let fs = Ssmc.Card.fs card in
  (* New note written moments before the card is yanked. *)
  ignore (ok (Fs.Memfs.create fs "/draft"));
  ignore (ok (Fs.Memfs.write fs "/draft" ~offset:0 ~bytes:1024));
  let eject = Ssmc.Card.eject ~surprise:true card in
  Alcotest.(check bool) "dirty blocks lost" true (eject.Ssmc.Card.lost_blocks >= 2);
  Alcotest.(check int) "nothing flushed" 0 eject.Ssmc.Card.flushed_blocks;
  advance engine (Time.span_s 1.0);
  ignore (Ssmc.Card.insert card);
  let fs = Ssmc.Card.fs card in
  Alcotest.(check bool) "draft is gone" false (Fs.Memfs.exists fs "/draft");
  Alcotest.(check int) "old files intact" 8192
    (ok (Fs.Memfs.file_size fs "/apps/organizer"))

let test_xip_from_card () =
  (* The OmniBook pattern: bundled software in the card, executed in
     place through the host's VM. *)
  let engine, card = make () in
  let manager = Ssmc.Card.manager card in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 64; swap = Vmem.Vm.No_swap }
      ~engine ~manager
  in
  let program =
    { Vmem.Exec.prog_name = "bundled-app"; text_bytes = 64 * 1024; data_bytes = 16 * 1024 }
  in
  let blocks = Vmem.Exec.install_text manager program in
  advance engine (Time.span_s 2.0);
  let launched = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  Alcotest.(check int) "no DRAM for text" 0 launched.Vmem.Exec.text_dram_bytes;
  let runtime = Vmem.Exec.run vm launched ~rng:(Rng.create ~seed:2) ~fetches:500 in
  Alcotest.(check bool) "executes from the card" true (Time.span_to_us runtime > 0.0)

let test_double_operations_rejected () =
  let _engine, card = make () in
  ignore (Ssmc.Card.eject card);
  Alcotest.check_raises "double eject" (Invalid_argument "Card test-card: not inserted")
    (fun () -> ignore (Ssmc.Card.eject card));
  ignore (Ssmc.Card.insert card);
  Alcotest.check_raises "double insert"
    (Invalid_argument "Card test-card: already inserted") (fun () ->
      ignore (Ssmc.Card.insert card))

let suite =
  [
    Alcotest.test_case "orderly eject & reinsert" `Quick test_orderly_eject_and_reinsert;
    Alcotest.test_case "surprise eject loses dirty" `Quick test_surprise_eject_loses_dirty_data;
    Alcotest.test_case "XIP from card" `Quick test_xip_from_card;
    Alcotest.test_case "double operations rejected" `Quick test_double_operations_rejected;
  ]
