(* Crash recovery: rebuilding the block map from flash sector headers. *)
open Sim

let make ?(flash_kib = 128) ?(buffer_blocks = 16) () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(flash_kib * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_s 5.0;
          refresh_on_rewrite = true;
        };
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram)

let advance engine span = Engine.run_until engine (Time.add (Engine.now engine) span)

let test_clean_shutdown_recovers_everything () =
  let _engine, m = make () in
  let blocks = Array.init 20 (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  ignore (Storage.Manager.flush_all m);
  let placement = Array.map (Storage.Manager.segment_of_block m) blocks in
  let fresh, scan_span, report = Storage.Manager.crash_and_remount m in
  Alcotest.(check int) "all blocks recovered" 20 report.Storage.Manager.live_recovered;
  Alcotest.(check int) "nothing was buffered" 0 report.Storage.Manager.buffered_lost;
  Alcotest.(check bool) "scan took device time" true (Time.span_to_us scan_span > 10.0);
  Array.iteri
    (fun i b ->
      Alcotest.(check (option int))
        (Printf.sprintf "block %d placement preserved" i)
        placement.(i)
        (Storage.Manager.segment_of_block fresh b);
      (* And it is readable at flash speed. *)
      Alcotest.(check bool) "readable" true
        (Time.span_to_us (Storage.Manager.read_block fresh b) > 10.0))
    blocks

let test_dirty_data_rolls_back_or_vanishes () =
  let engine, m = make () in
  (* [survivor] gets flushed once, then rewritten (dirty at crash):
     recovery must resurrect the flushed version.  [ghost] only ever
     lived in the buffer: it is gone. *)
  let survivor = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m survivor);
  advance engine (Time.span_s 30.0);
  Alcotest.(check bool) "survivor flushed" true
    (Storage.Manager.segment_of_block m survivor <> None);
  ignore (Storage.Manager.write_block m survivor);
  let ghost = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m ghost);
  let fresh, _span, report = Storage.Manager.crash_and_remount m in
  Alcotest.(check int) "two dirty blocks lost with the buffer" 2
    report.Storage.Manager.buffered_lost;
  Alcotest.(check bool) "survivor rolled back to its flash version" true
    (Storage.Manager.segment_of_block fresh survivor <> None);
  Alcotest.check_raises "ghost is unknown to the recovered manager"
    (Invalid_argument (Printf.sprintf "Manager: unknown block %d" ghost)) (fun () ->
      ignore (Storage.Manager.read_block fresh ghost))

let test_stale_copies_discarded () =
  let engine, m = make () in
  let b = Storage.Manager.alloc m in
  (* Flush the same block twice (rewrite between flushes): two flash
     copies with different versions exist until cleaning erases the old
     segment. *)
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 30.0);
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 30.0);
  let _fresh, _span, report = Storage.Manager.crash_and_remount m in
  Alcotest.(check int) "one winner" 1 report.Storage.Manager.live_recovered;
  Alcotest.(check bool) "old version discarded" true
    (report.Storage.Manager.stale_discarded >= 1)

let test_recovered_manager_fully_functional () =
  let engine, m = make ~flash_kib:64 () in
  let blocks = Array.init 30 (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  ignore (Storage.Manager.flush_all m);
  let fresh, _span, _report = Storage.Manager.crash_and_remount m in
  (* Drive enough churn through the recovered manager to force cleaning. *)
  for _ = 1 to 10 do
    Array.iter (fun b -> ignore (Storage.Manager.write_block fresh b)) blocks;
    advance engine (Time.span_s 10.0)
  done;
  ignore (Storage.Manager.flush_all fresh);
  let stats = Storage.Manager.stats fresh in
  Alcotest.(check int) "all still live" 30 stats.Storage.Manager.live_blocks;
  Alcotest.(check bool) "cleaning ran on recovered state" true
    (stats.Storage.Manager.cleanings > 0);
  (* Fresh allocations do not collide with recovered handles. *)
  let nb = Storage.Manager.alloc fresh in
  Alcotest.(check bool) "fresh handle distinct" true
    (not (Array.exists (fun b -> b = nb) blocks))

let test_scan_time_scales_with_flash_size () =
  let scan kib =
    let engine, m = make ~flash_kib:kib () in
    let b = Storage.Manager.alloc m in
    ignore (Storage.Manager.write_block m b);
    ignore (Storage.Manager.flush_all m);
    (* Let the flush's program finish so the scan measures only itself. *)
    advance engine (Time.span_s 1.0);
    let _, span, _ = Storage.Manager.crash_and_remount m in
    Time.span_to_us span
  in
  let small = scan 64 and large = scan 512 in
  Alcotest.(check bool)
    (Printf.sprintf "8x flash, ~8x scan (%.0fus vs %.0fus)" small large)
    true
    (large > 6.0 *. small && large < 10.0 *. small)

let suite =
  [
    Alcotest.test_case "clean shutdown recovers everything" `Quick
      test_clean_shutdown_recovers_everything;
    Alcotest.test_case "dirty data rolls back or vanishes" `Quick
      test_dirty_data_rolls_back_or_vanishes;
    Alcotest.test_case "stale copies discarded" `Quick test_stale_copies_discarded;
    Alcotest.test_case "recovered manager functional" `Quick
      test_recovered_manager_fully_functional;
    Alcotest.test_case "scan scales with size" `Quick test_scan_time_scales_with_flash_size;
  ]
