open Sim

let t ns = Time.of_ns ns

let test_empty () =
  let q : int Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Event_queue.length q);
  Alcotest.(check bool) "pop none" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None)

let test_ordering () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 30) "c");
  ignore (Event_queue.add q ~at:(t 10) "a");
  ignore (Event_queue.add q ~at:(t 20) "b");
  let pop () = Option.get (Event_queue.pop q) in
  let at1, v1 = pop () in
  Alcotest.(check int) "first time" 10 (Time.to_ns at1);
  Alcotest.(check string) "first value" "a" v1;
  Alcotest.(check string) "second" "b" (snd (pop ()));
  Alcotest.(check string) "third" "c" (snd (pop ()));
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_fifo_for_equal_times () =
  let q = Event_queue.create () in
  List.iter (fun v -> ignore (Event_queue.add q ~at:(t 5) v)) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order preserved" [ "x"; "y"; "z" ] order

let test_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~at:(t 1) "a" in
  ignore (Event_queue.add q ~at:(t 2) "b");
  Event_queue.cancel q h1;
  Alcotest.(check int) "live after cancel" 1 (Event_queue.length q);
  Alcotest.(check string) "cancelled entry skipped" "b" (snd (Option.get (Event_queue.pop q)));
  (* Cancelling twice or after firing is a no-op. *)
  Event_queue.cancel q h1;
  Alcotest.(check int) "still consistent" 0 (Event_queue.length q)

let test_cancel_head_updates_peek () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~at:(t 1) "head" in
  ignore (Event_queue.add q ~at:(t 9) "tail");
  Event_queue.cancel q h;
  Alcotest.(check int) "peek skips cancelled head" 9
    (Time.to_ns (Option.get (Event_queue.peek_time q)))

let test_clear () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 1) 1);
  ignore (Event_queue.add q ~at:(t 2) 2);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_interleaved_add_pop () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~at:(t 10) 10);
  ignore (Event_queue.add q ~at:(t 5) 5);
  Alcotest.(check int) "min first" 5 (snd (Option.get (Event_queue.pop q)));
  ignore (Event_queue.add q ~at:(t 1) 1);
  Alcotest.(check int) "new min" 1 (snd (Option.get (Event_queue.pop q)));
  Alcotest.(check int) "remaining" 10 (snd (Option.get (Event_queue.pop q)))

let prop_pop_sorted =
  QCheck.Test.make ~name:"event_queue: pops are time-sorted" ~count:300
    QCheck.(list (int_bound 100_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i at -> ignore (Event_queue.add q ~at:(t at) i)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (at, _) -> drain (Time.to_ns at :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

let prop_cancel_removes =
  QCheck.Test.make ~name:"event_queue: cancelled events never pop" ~count:200
    QCheck.(list (pair (int_bound 1000) bool))
    (fun entries ->
      let q = Event_queue.create () in
      let kept = ref [] in
      List.iteri
        (fun i (at, keep) ->
          let h = Event_queue.add q ~at:(t at) i in
          if keep then kept := i :: !kept else Event_queue.cancel q h)
        entries;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> acc
      in
      let popped = drain [] in
      List.sort compare popped = List.sort compare !kept)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO for equal times" `Quick test_fifo_for_equal_times;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel head" `Quick test_cancel_head_updates_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved_add_pop;
    QCheck_alcotest.to_alcotest prop_pop_sorted;
    QCheck_alcotest.to_alcotest prop_cancel_removes;
  ]
