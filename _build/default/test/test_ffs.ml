open Sim

let err = Alcotest.testable Fs.Fs_error.pp Fs.Fs_error.equal
let span_ok = Alcotest.testable Time.pp_span (fun _ _ -> true)
let res = Alcotest.result span_ok err

let make ?(config = Fs.Ffs.default_config) ?spindown () =
  let engine = Engine.create () in
  let disk = Device.Disk.create ?spindown_timeout:spindown ~rng:(Rng.create ~seed:5) () in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  (engine, Fs.Ffs.create_fs ~config ~engine ~disk ~dram ())

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" Fs.Fs_error.pp e

let test_format_layout () =
  let _e, fs = make () in
  (* 20MB KittyHawk, 4KB blocks: ~5120 blocks minus metadata. *)
  Alcotest.(check bool) "data region sized" true
    (Fs.Ffs.data_blocks fs > 4500 && Fs.Ffs.data_blocks fs < 5120);
  Alcotest.(check int) "all free initially" (Fs.Ffs.data_blocks fs) (Fs.Ffs.free_blocks fs)

let test_namespace_errors () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.mkdir fs "/d"));
  ignore (ok (Fs.Ffs.create fs "/d/f"));
  Alcotest.(check bool) "exists" true (Fs.Ffs.exists fs "/d/f");
  Alcotest.check res "dup" (Error Fs.Fs_error.Eexist) (Fs.Ffs.create fs "/d/f");
  Alcotest.check res "missing parent" (Error Fs.Fs_error.Enoent) (Fs.Ffs.create fs "/x/y");
  Alcotest.check res "notdir" (Error Fs.Fs_error.Enotdir) (Fs.Ffs.create fs "/d/f/z");
  Alcotest.(check (list string)) "readdir" [ "f" ] (ok (Fs.Ffs.readdir fs "/d"))

let test_write_allocates_read_costs_disk () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  let free0 = Fs.Ffs.free_blocks fs in
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:8192));
  Alcotest.(check int) "two blocks allocated" (free0 - 2) (Fs.Ffs.free_blocks fs);
  Alcotest.(check int) "size" 8192 (ok (Fs.Ffs.file_size fs "/f"));
  (* First read: in cache (we just wrote it) -> fast.  After enough other
     traffic evicts it, a read must hit the disk (ms-scale). *)
  let cached = ok (Fs.Ffs.read fs "/f" ~offset:0 ~bytes:4096) in
  Alcotest.(check bool) "cached read is sub-ms" true (Time.span_to_ms cached < 1.0)

let test_cache_miss_costs_milliseconds () =
  let config = { Fs.Ffs.default_config with Fs.Ffs.cache_blocks = 2 } in
  let _e, fs = make ~config () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:(64 * 4096)));
  (* Touch many other blocks to evict block 0 from the tiny cache. *)
  ignore (ok (Fs.Ffs.read fs "/f" ~offset:(50 * 4096) ~bytes:(8 * 4096)));
  let span = ok (Fs.Ffs.read fs "/f" ~offset:0 ~bytes:4096) in
  Alcotest.(check bool) "mechanical latency" true (Time.span_to_ms span > 1.0)

let test_indirect_file () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/big"));
  (* Write a block beyond the 12 direct pointers (needs the single
     indirect) and beyond 12+512 (needs the double indirect). *)
  ignore (ok (Fs.Ffs.write fs "/big" ~offset:(20 * 4096) ~bytes:4096));
  ignore (ok (Fs.Ffs.write fs "/big" ~offset:(600 * 4096) ~bytes:4096));
  Alcotest.(check int) "size tracks far write" (601 * 4096)
    (ok (Fs.Ffs.file_size fs "/big"));
  ignore (ok (Fs.Ffs.read fs "/big" ~offset:(600 * 4096) ~bytes:4096));
  (* Holes read as zero without device traffic. *)
  ignore (ok (Fs.Ffs.read fs "/big" ~offset:(100 * 4096) ~bytes:4096))

let test_unlink_frees_everything () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  let free0 = Fs.Ffs.free_blocks fs in
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:(20 * 4096)));
  Alcotest.(check bool) "blocks consumed (data + indirect)" true
    (Fs.Ffs.free_blocks fs <= free0 - 20);
  ignore (ok (Fs.Ffs.unlink fs "/f"));
  Alcotest.(check int) "all recycled" free0 (Fs.Ffs.free_blocks fs);
  Alcotest.(check bool) "gone" false (Fs.Ffs.exists fs "/f")

let test_truncate () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  let free0 = Fs.Ffs.free_blocks fs in
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:(8 * 4096)));
  ignore (ok (Fs.Ffs.truncate fs "/f" ~size:4096));
  Alcotest.(check int) "seven freed" (free0 - 1) (Fs.Ffs.free_blocks fs);
  Alcotest.(check int) "size" 4096 (ok (Fs.Ffs.file_size fs "/f"))

let test_enospc () =
  (* A tiny "disk": shrink capacity via a tiny Ffs on a custom spec. *)
  let spec = { Device.Specs.hp_kittyhawk with Device.Specs.k_capacity_bytes = 1024 * 1024 } in
  let engine = Engine.create () in
  let disk = Device.Disk.create ~spec ~rng:(Rng.create ~seed:1) () in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let config = { Fs.Ffs.default_config with Fs.Ffs.ninodes = 64 } in
  let fs = Fs.Ffs.create_fs ~config ~engine ~disk ~dram () in
  ignore (ok (Fs.Ffs.create fs "/hog"));
  let result = Fs.Ffs.write fs "/hog" ~offset:0 ~bytes:(2 * 1024 * 1024) in
  Alcotest.check res "enospc" (Error Fs.Fs_error.Enospc) result

let test_sync_pushes_dirty () =
  let engine, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:4096));
  let disk_writes_before = Device.Disk.writes (Fs.Ffs.disk fs) in
  let span = Fs.Ffs.sync fs in
  Alcotest.(check bool) "sync wrote to disk" true
    (Device.Disk.writes (Fs.Ffs.disk fs) > disk_writes_before);
  Alcotest.(check bool) "sync took disk time" true (Time.span_to_ms span > 1.0);
  ignore engine

let test_update_daemon_flushes () =
  let engine, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/f"));
  ignore (ok (Fs.Ffs.write fs "/f" ~offset:0 ~bytes:4096));
  let before = Device.Disk.writes (Fs.Ffs.disk fs) in
  (* The update daemon runs every 30s. *)
  Engine.run_until engine (Time.add (Engine.now engine) (Time.span_s 61.0));
  Alcotest.(check bool) "daemon flushed dirty data" true
    (Device.Disk.writes (Fs.Ffs.disk fs) > before)

let test_preload () =
  let _e, fs = make () in
  (match Fs.Ffs.preload fs "/app" ~size:10_000 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "preload: %a" Fs.Fs_error.pp e);
  Alcotest.(check int) "size" 10_000 (ok (Fs.Ffs.file_size fs "/app"))

(* --- Fragments (4.2BSD block/fragment allocation) ------------------------- *)

let fsck fs =
  match Fs.Ffs.check fs with Ok () -> () | Error msg -> Alcotest.failf "fsck: %s" msg

let test_fragment_tail_allocation () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/tiny"));
  let used0 = Fs.Ffs.used_bytes fs in
  (* 1000 bytes need one 1KB fragment, not a 4KB block. *)
  ignore (ok (Fs.Ffs.write fs "/tiny" ~offset:0 ~bytes:1000));
  Alcotest.(check int) "one fragment consumed" 1024 (Fs.Ffs.used_bytes fs - used0);
  fsck fs

let test_fragment_sharing () =
  let _e, fs = make () in
  (* Create first: directory growth allocates its own block. *)
  for i = 0 to 3 do
    ignore (ok (Fs.Ffs.create fs (Printf.sprintf "/t%d" i)))
  done;
  let used0 = Fs.Ffs.used_bytes fs in
  let free0 = Fs.Ffs.free_blocks fs in
  (* Four 1KB tails share one 4KB block. *)
  for i = 0 to 3 do
    ignore (ok (Fs.Ffs.write fs (Printf.sprintf "/t%d" i) ~offset:0 ~bytes:900))
  done;
  Alcotest.(check int) "four fragments, 4KB total" 4096 (Fs.Ffs.used_bytes fs - used0);
  Alcotest.(check int) "one whole block left the free pool" 1
    (free0 - Fs.Ffs.free_blocks fs);
  fsck fs

let test_fragment_upgrade_on_growth () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/grow"));
  ignore (ok (Fs.Ffs.write fs "/grow" ~offset:0 ~bytes:1000));
  fsck fs;
  (* Growing past the block boundary upgrades the tail to a whole block
     and allocates a new fragment tail. *)
  ignore (ok (Fs.Ffs.write fs "/grow" ~offset:1000 ~bytes:4096));
  Alcotest.(check int) "size" 5096 (ok (Fs.Ffs.file_size fs "/grow"));
  fsck fs;
  ignore (ok (Fs.Ffs.read fs "/grow" ~offset:0 ~bytes:5096));
  (* And growing within the tail extends the fragment run. *)
  ignore (ok (Fs.Ffs.write fs "/grow" ~offset:5096 ~bytes:2000));
  fsck fs

let test_fragment_truncate_and_unlink () =
  let _e, fs = make () in
  ignore (ok (Fs.Ffs.create fs "/a"));
  ignore (ok (Fs.Ffs.create fs "/b"));
  let used0 = Fs.Ffs.used_bytes fs in
  ignore (ok (Fs.Ffs.write fs "/a" ~offset:0 ~bytes:3500));  (* 4 frags *)
  ignore (ok (Fs.Ffs.write fs "/b" ~offset:0 ~bytes:900));  (* 1 frag *)
  fsck fs;
  (* Shrinking /a's tail releases fragments without touching /b. *)
  ignore (ok (Fs.Ffs.truncate fs "/a" ~size:800));
  fsck fs;
  Alcotest.(check int) "two fragments remain" 2048 (Fs.Ffs.used_bytes fs - used0);
  ignore (ok (Fs.Ffs.unlink fs "/a"));
  fsck fs;
  Alcotest.(check int) "only /b's fragment left" 1024 (Fs.Ffs.used_bytes fs - used0);
  ignore (ok (Fs.Ffs.unlink fs "/b"));
  fsck fs;
  Alcotest.(check int) "all space recycled" 0 (Fs.Ffs.used_bytes fs - used0)

let test_fragments_disabled () =
  let config = { Fs.Ffs.default_config with Fs.Ffs.frag_per_block = 1 } in
  let _e, fs = make ~config () in
  ignore (ok (Fs.Ffs.create fs "/tiny"));
  let used0 = Fs.Ffs.used_bytes fs in
  ignore (ok (Fs.Ffs.write fs "/tiny" ~offset:0 ~bytes:1000));
  Alcotest.(check int) "whole block consumed" 4096 (Fs.Ffs.used_bytes fs - used0);
  fsck fs

let prop_random_ops_consistent =
  QCheck.Test.make ~name:"ffs: random ops keep namespace consistent" ~count:25
    QCheck.(list_of_size (Gen.int_range 5 40) (pair (int_bound 3) (int_bound 3)))
    (fun ops ->
      let _e, fs = make () in
      let shadow = Hashtbl.create 8 in
      List.iter
        (fun (file, action) ->
          let path = Printf.sprintf "/f%d" file in
          match action with
          | 0 -> begin
            match Fs.Ffs.create fs path with
            | Ok _ -> Hashtbl.replace shadow path 0
            | Error Fs.Fs_error.Eexist -> ()
            | Error e -> Alcotest.failf "create: %a" Fs.Fs_error.pp e
          end
          | 1 ->
            if Hashtbl.mem shadow path then begin
              ignore (Fs.Ffs.write fs path ~offset:0 ~bytes:5000 |> Result.get_ok);
              Hashtbl.replace shadow path 5000
            end
          | 2 ->
            if Hashtbl.mem shadow path then begin
              ignore (Fs.Ffs.unlink fs path |> Result.get_ok);
              Hashtbl.remove shadow path
            end
          | _ ->
            if Hashtbl.mem shadow path then
              ignore (Fs.Ffs.read fs path ~offset:0 ~bytes:512 |> Result.get_ok))
        ops;
      (match Fs.Ffs.check fs with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "fsck: %s" msg);
      Hashtbl.fold
        (fun path size acc ->
          acc && Fs.Ffs.exists fs path && Fs.Ffs.file_size fs path = Ok size)
        shadow true)

let suite =
  [
    Alcotest.test_case "format layout" `Quick test_format_layout;
    Alcotest.test_case "namespace errors" `Quick test_namespace_errors;
    Alcotest.test_case "write/read" `Quick test_write_allocates_read_costs_disk;
    Alcotest.test_case "cache miss costs ms" `Quick test_cache_miss_costs_milliseconds;
    Alcotest.test_case "indirect file" `Quick test_indirect_file;
    Alcotest.test_case "unlink frees" `Quick test_unlink_frees_everything;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "enospc" `Quick test_enospc;
    Alcotest.test_case "sync" `Quick test_sync_pushes_dirty;
    Alcotest.test_case "update daemon" `Quick test_update_daemon_flushes;
    Alcotest.test_case "preload" `Quick test_preload;
    Alcotest.test_case "fragment tail" `Quick test_fragment_tail_allocation;
    Alcotest.test_case "fragment sharing" `Quick test_fragment_sharing;
    Alcotest.test_case "fragment upgrade" `Quick test_fragment_upgrade_on_growth;
    Alcotest.test_case "fragment truncate/unlink" `Quick test_fragment_truncate_and_unlink;
    Alcotest.test_case "fragments disabled" `Quick test_fragments_disabled;
    QCheck_alcotest.to_alcotest prop_random_ops_consistent;
  ]
