open Sim

let sec n = Time.of_ns (int_of_float (n *. 1e9))

let test_unknown_block_cold () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Alcotest.(check (float 0.0)) "unknown" 0.0 (Storage.Heat.heat h ~now:(sec 5.0) ~block:1)

let test_accumulation () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check (float 1e-9)) "two instant writes" 2.0
    (Storage.Heat.heat h ~now:(sec 0.0) ~block:1)

let test_decay_halves () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check (float 1e-6)) "one half-life" 0.5
    (Storage.Heat.heat h ~now:(sec 10.0) ~block:1);
  Alcotest.(check (float 1e-6)) "two half-lives" 0.25
    (Storage.Heat.heat h ~now:(sec 20.0) ~block:1)

let test_decay_then_accumulate () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Storage.Heat.record_write h ~now:(sec 10.0) ~block:1;
  (* 1 decayed to 0.5, plus the new write. *)
  Alcotest.(check (float 1e-6)) "decayed + fresh" 1.5
    (Storage.Heat.heat h ~now:(sec 10.0) ~block:1)

let test_is_hot () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  for _ = 1 to 5 do
    Storage.Heat.record_write h ~now:(sec 0.0) ~block:1
  done;
  Alcotest.(check bool) "hot now" true
    (Storage.Heat.is_hot h ~now:(sec 0.0) ~block:1 ~threshold:3.0);
  Alcotest.(check bool) "cools off" false
    (Storage.Heat.is_hot h ~now:(sec 60.0) ~block:1 ~threshold:3.0)

let test_forget () =
  let h = Storage.Heat.create ~half_life:(Time.span_s 10.0) () in
  Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
  Alcotest.(check int) "tracked" 1 (Storage.Heat.tracked h);
  Storage.Heat.forget h ~block:1;
  Alcotest.(check int) "forgotten" 0 (Storage.Heat.tracked h);
  Alcotest.(check (float 0.0)) "cold after forget" 0.0
    (Storage.Heat.heat h ~now:(sec 1.0) ~block:1)

let test_zero_half_life_rejected () =
  Alcotest.check_raises "zero half-life" (Invalid_argument "Heat.create: zero half_life")
    (fun () -> ignore (Storage.Heat.create ~half_life:Time.span_zero ()))

let prop_heat_decreasing_without_writes =
  QCheck.Test.make ~name:"heat: monotone decay without writes" ~count:200
    QCheck.(pair (float_range 0.1 100.0) (float_range 0.1 100.0))
    (fun (t1, dt) ->
      let h = Storage.Heat.create ~half_life:(Time.span_s 5.0) () in
      Storage.Heat.record_write h ~now:(sec 0.0) ~block:1;
      Storage.Heat.heat h ~now:(sec t1) ~block:1
      >= Storage.Heat.heat h ~now:(sec (t1 +. dt)) ~block:1)

let suite =
  [
    Alcotest.test_case "unknown cold" `Quick test_unknown_block_cold;
    Alcotest.test_case "accumulation" `Quick test_accumulation;
    Alcotest.test_case "decay halves" `Quick test_decay_halves;
    Alcotest.test_case "decay then accumulate" `Quick test_decay_then_accumulate;
    Alcotest.test_case "is_hot" `Quick test_is_hot;
    Alcotest.test_case "forget" `Quick test_forget;
    Alcotest.test_case "zero half-life" `Quick test_zero_half_life_rejected;
    QCheck_alcotest.to_alcotest prop_heat_decreasing_without_writes;
  ]
