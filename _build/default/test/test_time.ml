open Sim

let check_int = Alcotest.(check int)

let test_construction () =
  check_int "epoch is zero" 0 (Time.to_ns Time.zero);
  check_int "of_ns roundtrip" 123 (Time.to_ns (Time.of_ns 123));
  Alcotest.check_raises "negative instant" (Invalid_argument "Time.of_ns: negative")
    (fun () -> ignore (Time.of_ns (-1)));
  Alcotest.check_raises "negative span" (Invalid_argument "Time.span_ns: negative")
    (fun () -> ignore (Time.span_ns (-5)))

let test_unit_conversions () =
  check_int "us" 1_500 (Time.span_to_ns (Time.span_us 1.5));
  check_int "ms" 2_000_000 (Time.span_to_ns (Time.span_ms 2.0));
  check_int "s" 3_000_000_000 (Time.span_to_ns (Time.span_s 3.0));
  Alcotest.(check (float 1e-9)) "back to s" 3.0 (Time.span_to_s (Time.span_s 3.0));
  Alcotest.(check (float 1e-9)) "back to ms" 2.0 (Time.span_to_ms (Time.span_ms 2.0));
  Alcotest.(check (float 1e-9)) "back to us" 1.0 (Time.span_to_us (Time.span_us 1.0))

let test_arithmetic () =
  let t = Time.add Time.zero (Time.span_ns 100) in
  check_int "add" 100 (Time.to_ns t);
  let later = Time.add t (Time.span_ns 50) in
  check_int "diff" 50 (Time.span_to_ns (Time.diff later t));
  Alcotest.check_raises "diff underflow" (Invalid_argument "Time.diff: later < earlier")
    (fun () -> ignore (Time.diff t later));
  check_int "span_add" 30 (Time.span_to_ns (Time.span_add (Time.span_ns 10) (Time.span_ns 20)));
  check_int "span_scale" 25 (Time.span_to_ns (Time.span_scale (Time.span_ns 10) 2.5));
  check_int "max_span" 20 (Time.span_to_ns (Time.max_span (Time.span_ns 10) (Time.span_ns 20)))

let test_comparisons () =
  let a = Time.of_ns 1 and b = Time.of_ns 2 in
  Alcotest.(check bool) "lt" true Time.(a < b);
  Alcotest.(check bool) "le refl" true Time.(a <= a);
  Alcotest.(check bool) "not lt" false Time.(b < a);
  check_int "max" 2 (Time.to_ns (Time.max a b));
  check_int "min" 1 (Time.to_ns (Time.min a b));
  Alcotest.(check bool) "equal" true (Time.equal a (Time.of_ns 1));
  check_int "compare sign" (-1) (Time.compare a b)

let test_pp () =
  let s v = Fmt.str "%a" Time.pp (Time.of_ns v) in
  Alcotest.(check string) "ns" "500ns" (s 500);
  Alcotest.(check string) "us" "1.50us" (s 1_500);
  Alcotest.(check string) "ms" "2.50ms" (s 2_500_000);
  Alcotest.(check string) "s" "1.200s" (s 1_200_000_000)

let prop_add_diff_roundtrip =
  QCheck.Test.make ~name:"time: (t + d) - t = d" ~count:500
    QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000))
    (fun (base, d) ->
      let t = Time.of_ns base in
      let span = Time.span_ns d in
      Time.span_to_ns (Time.diff (Time.add t span) t) = d)

let prop_scale_monotone =
  QCheck.Test.make ~name:"time: scaling by k >= 1 does not shrink" ~count:200
    QCheck.(pair (int_bound 1_000_000) (float_range 1.0 10.0))
    (fun (d, k) ->
      let span = Time.span_ns d in
      Time.span_to_ns (Time.span_scale span k) >= d)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "unit conversions" `Quick test_unit_conversions;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_add_diff_roundtrip;
    QCheck_alcotest.to_alcotest prop_scale_monotone;
  ]
