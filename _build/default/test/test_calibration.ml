open Sim

let analyze ?(profile = Trace.Workloads.engineering) ?(seed = 77) ?(secs = 1200.0) () =
  Trace.Calibration.analyze
    (Trace.Synth.generate profile ~rng:(Rng.create ~seed) ~duration:(Time.span_s secs))

let test_engineering_conforms_to_sprite () =
  let report = analyze () in
  List.iter
    (fun (range, v, ok) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" range.Trace.Calibration.what v
           range.Trace.Calibration.lo range.Trace.Calibration.hi)
        true ok)
    (Trace.Calibration.evaluate report);
  Alcotest.(check bool) "conforms" true (Trace.Calibration.conforms report)

let test_conformance_is_seed_stable () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d conforms" seed)
        true
        (Trace.Calibration.conforms (analyze ~seed ())))
    [ 1; 2; 3 ]

let test_death_monotone_in_window () =
  let r = analyze () in
  Alcotest.(check bool) "5s death <= 30s death" true
    (r.Trace.Calibration.dead_within_5s <= r.Trace.Calibration.dead_within_30s)

let test_report_fields_sane () =
  let r = analyze ~secs:300.0 () in
  Alcotest.(check bool) "ops positive" true (r.Trace.Calibration.ops > 0);
  Alcotest.(check bool) "mean io positive" true (r.Trace.Calibration.mean_io_bytes > 0.0);
  Alcotest.(check bool) "write rate positive" true
    (r.Trace.Calibration.write_rate_bytes_per_s > 0.0);
  Alcotest.(check bool) "fractions are probabilities" true
    (List.for_all
       (fun v -> v >= 0.0 && v <= 1.0)
       [
         r.Trace.Calibration.dead_within_5s;
         r.Trace.Calibration.dead_within_30s;
         r.Trace.Calibration.new_file_share_of_writes;
         r.Trace.Calibration.short_lived_file_fraction;
       ])

let test_database_profile_differs () =
  (* The record-update workload must look nothing like the Sprite mix:
     its writes overwhelmingly hit existing files. *)
  let r = analyze ~profile:Trace.Workloads.database () in
  Alcotest.(check bool) "few new-file bytes" true
    (r.Trace.Calibration.new_file_share_of_writes < 0.35)

let suite =
  [
    Alcotest.test_case "engineering matches Sprite targets" `Slow
      test_engineering_conforms_to_sprite;
    Alcotest.test_case "seed stability" `Slow test_conformance_is_seed_stable;
    Alcotest.test_case "death monotone in window" `Slow test_death_monotone_in_window;
    Alcotest.test_case "report fields sane" `Quick test_report_fields_sane;
    Alcotest.test_case "database profile differs" `Slow test_database_profile_differs;
  ]
