open Sim

let settle engine manager =
  let flash = Storage.Manager.flash manager in
  let busy = ref (Engine.now engine) in
  for bank = 0 to Device.Flash.nbanks flash - 1 do
    busy := Time.max !busy (Device.Flash.bank_busy_until flash ~bank)
  done;
  Engine.run_until engine (Time.add !busy (Time.span_s 1.0))

let make () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(2 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager =
    Storage.Manager.create
      { Storage.Manager.default_config with Storage.Manager.segment_sectors = 8 }
      ~engine ~flash ~dram
  in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 256; swap = Vmem.Vm.No_swap }
      ~engine ~manager
  in
  (engine, manager, vm)

let install engine manager prog =
  let blocks = Vmem.Exec.install_text manager prog in
  settle engine manager;
  blocks

let program = { Vmem.Exec.prog_name = "editor"; text_bytes = 128 * 1024; data_bytes = 32 * 1024 }

let test_install_text () =
  let _engine, manager, _vm = make () in
  let blocks = Vmem.Exec.install_text manager program in
  Alcotest.(check int) "blocks cover text" 256 (Array.length blocks);
  Array.iter
    (fun b ->
      Alcotest.(check bool) "in flash" true
        (Storage.Manager.segment_of_block manager b <> None))
    blocks

let test_xip_launch_is_instant () =
  let engine, manager, vm = make () in
  let blocks = install engine manager program in
  let l = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  Alcotest.(check int) "no DRAM duplicated" 0 l.Vmem.Exec.text_dram_bytes;
  Alcotest.(check bool) "launch under a millisecond" true
    (Time.span_to_ms l.Vmem.Exec.launch_latency < 1.0)

let test_copy_launch_pays_for_the_copy () =
  let engine, manager, vm = make () in
  let blocks = install engine manager program in
  let xip = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  let copy = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Copy_to_dram in
  Alcotest.(check int) "text duplicated in DRAM" (128 * 1024)
    copy.Vmem.Exec.text_dram_bytes;
  let ratio =
    Time.span_to_us copy.Vmem.Exec.launch_latency
    /. Float.max 1.0 (Time.span_to_us xip.Vmem.Exec.launch_latency)
  in
  Alcotest.(check bool)
    (Printf.sprintf "copy launch %.0fx slower than XIP" ratio)
    true (ratio > 10.0)

let test_disk_launch_slowest () =
  let engine, manager, vm = make () in
  let blocks = install engine manager program in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:4) () in
  let copy = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Copy_to_dram in
  let from_disk =
    Vmem.Exec.launch vm program ~text_blocks:blocks (Vmem.Exec.Load_from_disk disk)
  in
  Alcotest.(check bool) "disk slower than flash copy" true
    (Time.span_to_ms from_disk.Vmem.Exec.launch_latency
    > Time.span_to_ms copy.Vmem.Exec.launch_latency)

let test_run_executes () =
  let engine, manager, vm = make () in
  let blocks = install engine manager program in
  let xip = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  let copy = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Copy_to_dram in
  let t_xip = Vmem.Exec.run vm xip ~rng:(Rng.create ~seed:1) ~fetches:2_000 in
  let t_copy = Vmem.Exec.run vm copy ~rng:(Rng.create ~seed:1) ~fetches:2_000 in
  Alcotest.(check bool) "both make progress" true
    (Time.span_to_us t_xip > 0.0 && Time.span_to_us t_copy > 0.0);
  (* Steady-state fetches from flash are slower per access than DRAM. *)
  Alcotest.(check bool) "flash fetches cost more" true
    (Time.span_to_us t_xip > Time.span_to_us t_copy)

let test_strategy_names () =
  Alcotest.(check string) "xip" "execute-in-place"
    (Vmem.Exec.strategy_name Vmem.Exec.Execute_in_place);
  Alcotest.(check string) "copy" "copy-to-dram"
    (Vmem.Exec.strategy_name Vmem.Exec.Copy_to_dram)

let suite =
  [
    Alcotest.test_case "install text" `Quick test_install_text;
    Alcotest.test_case "XIP launch instant" `Quick test_xip_launch_is_instant;
    Alcotest.test_case "copy pays for copy" `Quick test_copy_launch_pays_for_the_copy;
    Alcotest.test_case "disk launch slowest" `Quick test_disk_launch_slowest;
    Alcotest.test_case "run executes" `Quick test_run_executes;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
  ]
