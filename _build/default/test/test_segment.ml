open Sim

let make ?(id = 0) ?(first = 100) ?(n = 4) () =
  Storage.Segment.create ~id ~first_sector:first ~nslots:n

let test_fresh () =
  let s = make () in
  Alcotest.(check bool) "free" true (Storage.Segment.state s = Storage.Segment.Free);
  Alcotest.(check int) "nslots" 4 (Storage.Segment.nslots s);
  Alcotest.(check int) "live" 0 (Storage.Segment.live_count s);
  Alcotest.(check int) "sector addressing" 102 (Storage.Segment.sector_of_slot s 2);
  Alcotest.check_raises "slot bound" (Invalid_argument "Segment.sector_of_slot")
    (fun () -> ignore (Storage.Segment.sector_of_slot s 4))

let test_open_append_close_cycle () =
  let s = make ~n:2 () in
  Storage.Segment.open_ s;
  Alcotest.(check bool) "open" true (Storage.Segment.state s = Storage.Segment.Open);
  Alcotest.(check bool) "append 1" true (Storage.Segment.append s ~block:10 = Some 0);
  Alcotest.(check bool) "append 2" true (Storage.Segment.append s ~block:11 = Some 1);
  Alcotest.(check bool) "auto-closed when full" true
    (Storage.Segment.state s = Storage.Segment.Closed);
  Alcotest.(check int) "live" 2 (Storage.Segment.live_count s);
  Alcotest.(check (float 1e-9)) "utilization" 1.0 (Storage.Segment.utilization s)

let test_append_errors () =
  let s = make () in
  Alcotest.check_raises "append to free" (Invalid_argument "Segment.append: not open")
    (fun () -> ignore (Storage.Segment.append s ~block:1));
  Storage.Segment.open_ s;
  Alcotest.check_raises "double open" (Invalid_argument "Segment.open_: not free")
    (fun () -> Storage.Segment.open_ s)

let test_kill_and_live_blocks () =
  let s = make ~n:3 () in
  Storage.Segment.open_ s;
  ignore (Storage.Segment.append s ~block:7);
  ignore (Storage.Segment.append s ~block:8);
  ignore (Storage.Segment.append s ~block:9);
  Storage.Segment.kill s ~slot:1;
  Alcotest.(check (list (pair int int))) "live blocks" [ (0, 7); (2, 9) ]
    (Storage.Segment.live_blocks s);
  Alcotest.(check int) "used slots unchanged" 3 (Storage.Segment.used_slots s);
  Alcotest.check_raises "double kill" (Invalid_argument "Segment.kill: slot empty")
    (fun () -> Storage.Segment.kill s ~slot:1)

let test_reset_requires_empty () =
  let s = make ~n:2 () in
  Storage.Segment.open_ s;
  ignore (Storage.Segment.append s ~block:1);
  Storage.Segment.close s;
  Alcotest.check_raises "reset with live data"
    (Invalid_argument "Segment.reset_to_free: live blocks remain") (fun () ->
      Storage.Segment.reset_to_free s);
  Storage.Segment.kill s ~slot:0;
  Storage.Segment.reset_to_free s;
  Alcotest.(check bool) "free again" true (Storage.Segment.state s = Storage.Segment.Free);
  Alcotest.(check int) "slots recycled" 0 (Storage.Segment.used_slots s)

let test_touch () =
  let s = make () in
  Storage.Segment.touch s ~at:(Time.of_ns 42);
  Alcotest.(check int) "touched" 42 (Time.to_ns (Storage.Segment.last_touched s))

let prop_live_count_consistent =
  QCheck.Test.make ~name:"segment: live_count = |live_blocks|" ~count:300
    QCheck.(list (int_bound 9))
    (fun kills ->
      let s = Storage.Segment.create ~id:0 ~first_sector:0 ~nslots:10 in
      Storage.Segment.open_ s;
      for b = 0 to 9 do
        ignore (Storage.Segment.append s ~block:b)
      done;
      List.iter
        (fun slot ->
          match List.assoc_opt slot (Storage.Segment.live_blocks s) with
          | Some _ -> Storage.Segment.kill s ~slot
          | None -> ())
        kills;
      Storage.Segment.live_count s = List.length (Storage.Segment.live_blocks s))

let suite =
  [
    Alcotest.test_case "fresh segment" `Quick test_fresh;
    Alcotest.test_case "open/append/close" `Quick test_open_append_close_cycle;
    Alcotest.test_case "append errors" `Quick test_append_errors;
    Alcotest.test_case "kill & live blocks" `Quick test_kill_and_live_blocks;
    Alcotest.test_case "reset requires empty" `Quick test_reset_requires_empty;
    Alcotest.test_case "touch" `Quick test_touch;
    QCheck_alcotest.to_alcotest prop_live_count_consistent;
  ]
