open Sim

let test_put_get () =
  let box = Ssmc.Recovery_box.create () in
  Ssmc.Recovery_box.put box ~key:"session" ~bytes:128;
  Ssmc.Recovery_box.put box ~key:"arp-cache" ~bytes:512;
  Alcotest.(check (option int)) "get" (Some 128) (Ssmc.Recovery_box.get box ~key:"session");
  Alcotest.(check (option int)) "missing" None (Ssmc.Recovery_box.get box ~key:"nope");
  Alcotest.(check int) "size" 2 (Ssmc.Recovery_box.size box);
  Alcotest.(check int) "stored bytes" 640 (Ssmc.Recovery_box.stored_bytes box)

let test_update_and_delete () =
  let box = Ssmc.Recovery_box.create () in
  Ssmc.Recovery_box.put box ~key:"k" ~bytes:10;
  Ssmc.Recovery_box.put box ~key:"k" ~bytes:20;
  Alcotest.(check (option int)) "updated" (Some 20) (Ssmc.Recovery_box.get box ~key:"k");
  Alcotest.(check int) "still one item" 1 (Ssmc.Recovery_box.size box);
  Alcotest.(check bool) "delete" true (Ssmc.Recovery_box.delete box ~key:"k");
  Alcotest.(check bool) "double delete" false (Ssmc.Recovery_box.delete box ~key:"k")

let test_bounded_capacity () =
  let box = Ssmc.Recovery_box.create ~capacity_items:4 () in
  for i = 1 to 6 do
    Ssmc.Recovery_box.put box ~key:(Printf.sprintf "k%d" i) ~bytes:i
  done;
  Alcotest.(check int) "capped" 4 (Ssmc.Recovery_box.size box);
  (* The oldest entries were evicted. *)
  Alcotest.(check (option int)) "k1 evicted" None (Ssmc.Recovery_box.get box ~key:"k1");
  Alcotest.(check (option int)) "k6 kept" (Some 6) (Ssmc.Recovery_box.get box ~key:"k6")

let test_clean_crash_recovers_everything () =
  let box = Ssmc.Recovery_box.create () in
  for i = 1 to 50 do
    Ssmc.Recovery_box.put box ~key:(Printf.sprintf "k%d" i) ~bytes:100
  done;
  Ssmc.Recovery_box.crash box ~rng:(Rng.create ~seed:1) ~corruption_rate:0.0;
  let r = Ssmc.Recovery_box.recover box in
  Alcotest.(check int) "all intact" 50 r.Ssmc.Recovery_box.intact;
  Alcotest.(check int) "none corrupted" 0 r.Ssmc.Recovery_box.corrupted;
  Alcotest.(check int) "all bytes salvaged" 5000 r.Ssmc.Recovery_box.salvaged_bytes

let test_corruption_detected_and_discarded () =
  let box = Ssmc.Recovery_box.create ~capacity_items:512 () in
  for i = 1 to 200 do
    Ssmc.Recovery_box.put box ~key:(Printf.sprintf "k%d" i) ~bytes:64
  done;
  Ssmc.Recovery_box.crash box ~rng:(Rng.create ~seed:2) ~corruption_rate:0.25;
  let r = Ssmc.Recovery_box.recover box in
  Alcotest.(check int) "accounting adds up" 200
    (r.Ssmc.Recovery_box.intact + r.Ssmc.Recovery_box.corrupted);
  Alcotest.(check bool) "some corruption detected" true (r.Ssmc.Recovery_box.corrupted > 20);
  Alcotest.(check bool) "most items survive" true (r.Ssmc.Recovery_box.intact > 100);
  (* Damaged items are unreadable afterwards; intact ones still read. *)
  Alcotest.(check int) "table matches report" r.Ssmc.Recovery_box.intact
    (Ssmc.Recovery_box.size box)

let test_get_never_returns_corrupt () =
  let box = Ssmc.Recovery_box.create () in
  Ssmc.Recovery_box.put box ~key:"k" ~bytes:42;
  Ssmc.Recovery_box.crash box ~rng:(Rng.create ~seed:3) ~corruption_rate:1.0;
  (* Even before recover runs, a checksum-failing item is not served. *)
  Alcotest.(check (option int)) "corrupt never served" None
    (Ssmc.Recovery_box.get box ~key:"k")

let prop_recovery_partition =
  QCheck.Test.make ~name:"recovery_box: intact + corrupted = total" ~count:100
    QCheck.(pair small_int (float_range 0.0 1.0))
    (fun (seed, rate) ->
      let box = Ssmc.Recovery_box.create ~capacity_items:128 () in
      for i = 1 to 64 do
        Ssmc.Recovery_box.put box ~key:(string_of_int i) ~bytes:i
      done;
      Ssmc.Recovery_box.crash box ~rng:(Rng.create ~seed) ~corruption_rate:rate;
      let r = Ssmc.Recovery_box.recover box in
      r.Ssmc.Recovery_box.intact + r.Ssmc.Recovery_box.corrupted = 64
      && Ssmc.Recovery_box.size box = r.Ssmc.Recovery_box.intact)

let suite =
  [
    Alcotest.test_case "put/get" `Quick test_put_get;
    Alcotest.test_case "update & delete" `Quick test_update_and_delete;
    Alcotest.test_case "bounded capacity" `Quick test_bounded_capacity;
    Alcotest.test_case "clean crash" `Quick test_clean_crash_recovers_everything;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected_and_discarded;
    Alcotest.test_case "corrupt never served" `Quick test_get_never_returns_corrupt;
    QCheck_alcotest.to_alcotest prop_recovery_partition;
  ]
