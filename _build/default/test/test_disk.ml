open Sim

let make ?spindown () =
  Device.Disk.create ?spindown_timeout:spindown ~rng:(Rng.create ~seed:99) ()

let test_geometry () =
  let d = make () in
  Alcotest.(check int) "capacity" (20 * Units.mib) (Device.Disk.capacity_bytes d);
  Alcotest.(check int) "sector" 512 (Device.Disk.sector_bytes d)

let test_seek_curve () =
  let d = make () in
  let s0 = Device.Disk.seek_time d ~from_cyl:10 ~to_cyl:10 in
  Alcotest.(check int) "zero-distance seek free" 0 (Time.span_to_ns s0);
  let near = Device.Disk.seek_time d ~from_cyl:0 ~to_cyl:1 in
  let far = Device.Disk.seek_time d ~from_cyl:0 ~to_cyl:1000 in
  Alcotest.(check bool) "monotone in distance" true
    (Time.span_to_ns near < Time.span_to_ns far);
  (* One-third stroke costs the spec's average seek. *)
  let third = Device.Disk.seek_time d ~from_cyl:0 ~to_cyl:(1024 / 3) in
  let avg = Device.Specs.(hp_kittyhawk.k_avg_seek) in
  Alcotest.(check bool) "third-stroke = avg seek (within 5%)" true
    (Float.abs (Time.span_to_ms third -. Time.span_to_ms avg) < 0.05 *. Time.span_to_ms avg);
  Alcotest.(check bool) "symmetric" true
    (Time.span_to_ns (Device.Disk.seek_time d ~from_cyl:100 ~to_cyl:300)
    = Time.span_to_ns (Device.Disk.seek_time d ~from_cyl:300 ~to_cyl:100))

let test_access_latency_scale () =
  let d = make () in
  let op = Device.Disk.access d ~now:Time.zero ~lba:1000 ~bytes:4096 ~kind:`Read in
  let lat = Time.diff op.Device.Disk.finish Time.zero in
  (* Mechanical: must be on the order of milliseconds. *)
  Alcotest.(check bool) "ms-scale" true (Time.span_to_ms lat > 1.0 && Time.span_to_ms lat < 100.0);
  Alcotest.(check int) "read counted" 1 (Device.Disk.reads d);
  Alcotest.(check int) "bytes" 4096 (Device.Disk.bytes_transferred d)

let test_requests_serialize () =
  let d = make () in
  let op1 = Device.Disk.access d ~now:Time.zero ~lba:0 ~bytes:512 ~kind:`Write in
  let op2 = Device.Disk.access d ~now:Time.zero ~lba:30_000 ~bytes:512 ~kind:`Read in
  Alcotest.(check bool) "second starts after first" true
    Time.(op1.Device.Disk.finish <= op2.Device.Disk.start);
  Alcotest.(check bool) "busy_until tracks" true
    (Time.equal (Device.Disk.busy_until d) op2.Device.Disk.finish)

let test_out_of_range () =
  let d = make () in
  Alcotest.check_raises "beyond capacity"
    (Invalid_argument "Disk.access: address out of range") (fun () ->
      ignore
        (Device.Disk.access d ~now:Time.zero
           ~lba:(20 * Units.mib / 512)
           ~bytes:512 ~kind:`Read))

let test_spin_down_and_up () =
  let d = make ~spindown:(Time.span_s 5.0) () in
  let op1 = Device.Disk.access d ~now:Time.zero ~lba:0 ~bytes:512 ~kind:`Read in
  (* Come back long after the spin-down timeout. *)
  let later = Time.add op1.Device.Disk.finish (Time.span_s 60.0) in
  let op2 = Device.Disk.access d ~now:later ~lba:0 ~bytes:512 ~kind:`Read in
  Alcotest.(check int) "one spin-up" 1 (Device.Disk.spin_ups d);
  let lat2 = Time.diff op2.Device.Disk.finish later in
  Alcotest.(check bool) "spin-up penalty paid" true (Time.span_to_s lat2 >= 1.0);
  (* A quick follow-up does not spin up again. *)
  let op3 =
    Device.Disk.access d ~now:op2.Device.Disk.finish ~lba:100 ~bytes:512 ~kind:`Read
  in
  ignore op3;
  Alcotest.(check int) "still one spin-up" 1 (Device.Disk.spin_ups d)

let test_energy_spinning_vs_standby () =
  (* With a spindown timeout, a long idle gap costs far less energy. *)
  let with_timeout = make ~spindown:(Time.span_s 2.0) () in
  let without = make () in
  let use d =
    let op = Device.Disk.access d ~now:Time.zero ~lba:0 ~bytes:512 ~kind:`Read in
    let later = Time.add op.Device.Disk.finish (Time.span_s 600.0) in
    Device.Disk.finish_accounting d ~now:later;
    Device.Power.Meter.total_joules (Device.Disk.meter d)
  in
  let e_timeout = use with_timeout and e_always = use without in
  Alcotest.(check bool) "spindown saves energy" true (e_timeout < e_always /. 5.0)

let test_avg_estimate () =
  let d = make () in
  let est = Device.Disk.avg_access_estimate d ~bytes:4096 in
  (* avg seek 18ms + half rotation 5.6ms + transfer ~4.1ms *)
  Alcotest.(check bool) "estimate plausible" true
    (Time.span_to_ms est > 20.0 && Time.span_to_ms est < 40.0)

let prop_access_within_disk =
  QCheck.Test.make ~name:"disk: any valid access completes after it starts" ~count:200
    QCheck.(pair (int_bound 40_000) (int_bound 8))
    (fun (lba, blocks) ->
      let d = make () in
      let bytes = blocks * 512 in
      if (lba * 512) + bytes <= Device.Disk.capacity_bytes d then begin
        let op = Device.Disk.access d ~now:Time.zero ~lba ~bytes ~kind:`Read in
        Time.(op.Device.Disk.start <= op.Device.Disk.finish)
      end
      else true)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "seek curve" `Quick test_seek_curve;
    Alcotest.test_case "access latency scale" `Quick test_access_latency_scale;
    Alcotest.test_case "requests serialize" `Quick test_requests_serialize;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "spin down and up" `Quick test_spin_down_and_up;
    Alcotest.test_case "spindown energy" `Quick test_energy_spinning_vs_standby;
    Alcotest.test_case "average estimate" `Quick test_avg_estimate;
    QCheck_alcotest.to_alcotest prop_access_within_disk;
  ]
