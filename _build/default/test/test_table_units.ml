open Sim

let test_units () =
  Alcotest.(check int) "kib" 1024 Units.kib;
  Alcotest.(check int) "mib" (1024 * 1024) Units.mib;
  Alcotest.(check int) "of_mib" (3 * 1024 * 1024) (Units.of_mib 3);
  Alcotest.(check (float 1e-9)) "to_mib" 1.5 (Units.to_mib (Units.mib + (Units.mib / 2)));
  Alcotest.(check int) "ceil_div exact" 4 (Units.ceil_div 8 2);
  Alcotest.(check int) "ceil_div up" 5 (Units.ceil_div 9 2);
  Alcotest.(check int) "round_up" 12 (Units.round_up 10 ~multiple:4);
  Alcotest.(check int) "round_up exact" 12 (Units.round_up 12 ~multiple:4);
  Alcotest.check_raises "bad multiple" (Invalid_argument "Units.round_up") (fun () ->
      ignore (Units.round_up 1 ~multiple:0))

let test_table_rendering () =
  let t =
    Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length rendered >= 10 && String.sub rendered 0 10 = "== demo ==");
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check bool) "several lines" true (List.length lines >= 5);
  (* Right-aligned numbers end at the same column. *)
  Alcotest.check_raises "width mismatch" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_i 42);
  Alcotest.(check string) "float integral" "3" (Table.cell_f 3.0);
  Alcotest.(check string) "float fractional" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "pct" "42.0%" (Table.cell_pct 0.42);
  Alcotest.(check string) "span us" "5.00us" (Table.cell_span (Time.span_us 5.0));
  Alcotest.(check string) "span s" "2.000s" (Table.cell_span (Time.span_s 2.0));
  Alcotest.(check string) "bytes" "512B" (Table.cell_bytes 512);
  Alcotest.(check string) "kb" "2.0KB" (Table.cell_bytes 2048);
  Alcotest.(check string) "mb" "1.0MB" (Table.cell_bytes Units.mib)

let test_chart_bars () =
  let rendered =
    Sim.Chart.bars ~width:10 ~title:"demo" ~unit:"%" [ ("a", 100.0); ("bb", 50.0); ("c", 0.0) ]
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check bool) "title present" true (List.exists (fun l -> l = "-- demo --") lines);
  Alcotest.(check bool) "full bar for max" true
    (List.exists (fun l -> l = "a  |########## 100%") lines);
  Alcotest.(check bool) "half bar" true
    (List.exists
       (fun l -> String.length l > 0 && l.[0] = 'b' && String.length (String.trim l) > 0)
       lines);
  (* Negative values are clamped, not crashed. *)
  ignore (Sim.Chart.bars ~title:"neg" ~unit:"" [ ("x", -5.0) ])

let suite =
  [
    Alcotest.test_case "units helpers" `Quick test_units;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "chart bars" `Quick test_chart_bars;
  ]
