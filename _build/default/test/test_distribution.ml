open Sim

let sample_mean dist ~seed ~n =
  let rng = Rng.create ~seed in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Distribution.sample dist rng
  done;
  !total /. float_of_int n

let within name ~expected ~tolerance actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%g - %g| <= %g" name actual expected tolerance)
    true
    (Float.abs (actual -. expected) <= tolerance)

let test_constant () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    Alcotest.(check (float 0.0)) "constant" 4.2 (Distribution.sample (Constant 4.2) rng)
  done

let test_uniform () =
  let dist = Distribution.Uniform { lo = 2.0; hi = 6.0 } in
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Distribution.sample dist rng in
    Alcotest.(check bool) "in range" true (v >= 2.0 && v < 6.0)
  done;
  within "uniform mean" ~expected:4.0 ~tolerance:0.1 (sample_mean dist ~seed:3 ~n:20_000)

let test_exponential () =
  let dist = Distribution.Exponential { mean = 5.0 } in
  within "exp mean" ~expected:5.0 ~tolerance:0.2 (sample_mean dist ~seed:4 ~n:50_000);
  Alcotest.(check (float 1e-9)) "analytic mean" 5.0 (Distribution.mean dist)

let test_pareto () =
  let dist = Distribution.Pareto { shape = 3.0; scale = 2.0 } in
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true (Distribution.sample dist rng >= 2.0)
  done;
  Alcotest.(check (float 1e-9)) "analytic mean" 3.0 (Distribution.mean dist);
  Alcotest.(check (float 0.0)) "infinite mean for shape<=1" infinity
    (Distribution.mean (Pareto { shape = 1.0; scale = 2.0 }))

let test_lognormal_calibration () =
  let dist = Distribution.lognormal_of_mean_p50 ~mean:4096.0 ~median:2048.0 in
  Alcotest.(check (float 1.0)) "analytic mean matches" 4096.0 (Distribution.mean dist);
  within "sampled mean" ~expected:4096.0 ~tolerance:250.0
    (sample_mean dist ~seed:6 ~n:100_000);
  Alcotest.check_raises "mean < median rejected"
    (Invalid_argument "Distribution.lognormal_of_mean_p50") (fun () ->
      ignore (Distribution.lognormal_of_mean_p50 ~mean:1.0 ~median:2.0))

let test_mixture () =
  let dist =
    Distribution.Mixture [ (1.0, Constant 10.0); (3.0, Constant 20.0) ]
  in
  Alcotest.(check (float 1e-9)) "mixture mean" 17.5 (Distribution.mean dist);
  within "sampled mixture mean" ~expected:17.5 ~tolerance:0.2
    (sample_mean dist ~seed:7 ~n:20_000)

let test_sample_int () =
  let rng = Rng.create ~seed:8 in
  Alcotest.(check int) "round" 4 (Distribution.sample_int (Constant 4.4) rng);
  Alcotest.(check int) "negative clamps to zero" 0
    (Distribution.sample_int (Constant (-3.0)) rng)

let test_zipf_probabilities () =
  let z = Distribution.Zipf.create ~n:100 ~s:1.0 in
  let total = ref 0.0 in
  for rank = 0 to 99 do
    let p = Distribution.Zipf.probability z rank in
    Alcotest.(check bool) "non-negative" true (p >= 0.0);
    total := !total +. p
  done;
  Alcotest.(check (float 1e-9)) "mass sums to 1" 1.0 !total;
  Alcotest.(check bool) "rank 0 most popular" true
    (Distribution.Zipf.probability z 0 > Distribution.Zipf.probability z 50)

let test_zipf_sampling_skew () =
  let z = Distribution.Zipf.create ~n:50 ~s:1.2 in
  let rng = Rng.create ~seed:9 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let r = Distribution.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 10" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 0 dominates rank 49" true (counts.(0) > 3 * counts.(49))

let test_zipf_errors () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n <= 0") (fun () ->
      ignore (Distribution.Zipf.create ~n:0 ~s:1.0));
  let z = Distribution.Zipf.create ~n:3 ~s:1.0 in
  Alcotest.check_raises "rank range" (Invalid_argument "Zipf.probability: rank")
    (fun () -> ignore (Distribution.Zipf.probability z 3))

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf: sample within [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let z = Distribution.Zipf.create ~n ~s:0.9 in
      let rng = Rng.create ~seed in
      let r = Distribution.Zipf.sample z rng in
      r >= 0 && r < n)

let prop_samples_non_negative =
  QCheck.Test.make ~name:"distributions used for sizes are non-negative" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed in
      List.for_all
        (fun d -> Distribution.sample d rng >= 0.0)
        [
          Distribution.Exponential { mean = 3.0 };
          Distribution.Uniform { lo = 0.0; hi = 5.0 };
          Distribution.Pareto { shape = 2.0; scale = 1.0 };
          Distribution.Lognormal { mu = 1.0; sigma = 0.8 };
        ])

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "uniform" `Quick test_uniform;
    Alcotest.test_case "exponential" `Quick test_exponential;
    Alcotest.test_case "pareto" `Quick test_pareto;
    Alcotest.test_case "lognormal calibration" `Quick test_lognormal_calibration;
    Alcotest.test_case "mixture" `Quick test_mixture;
    Alcotest.test_case "sample_int" `Quick test_sample_int;
    Alcotest.test_case "zipf probabilities" `Quick test_zipf_probabilities;
    Alcotest.test_case "zipf sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf errors" `Quick test_zipf_errors;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
    QCheck_alcotest.to_alcotest prop_samples_non_negative;
  ]
