open Sim

let make ?(nbanks = 2) ?(endurance = 5) ?(size_kib = 64) () =
  Device.Flash.create
    (Device.Flash.config ~nbanks ~endurance_override:endurance
       ~size_bytes:(size_kib * 1024) ())

let ok = function
  | Ok op -> op
  | Error e -> Alcotest.failf "unexpected flash error: %a" Device.Flash.pp_error e

let t0 = Time.zero

let test_geometry () =
  let f = make () in
  Alcotest.(check int) "sectors" 128 (Device.Flash.nsectors f);
  Alcotest.(check int) "banks" 2 (Device.Flash.nbanks f);
  Alcotest.(check int) "sectors per bank" 64 (Device.Flash.sectors_per_bank f);
  Alcotest.(check int) "sector bytes" 512 (Device.Flash.sector_bytes f);
  Alcotest.(check int) "bank of sector 0" 0 (Device.Flash.bank_of_sector f 0);
  Alcotest.(check int) "bank of sector 64" 1 (Device.Flash.bank_of_sector f 64);
  Alcotest.check_raises "sector out of range" (Invalid_argument "Flash.bank_of_sector")
    (fun () -> ignore (Device.Flash.bank_of_sector f 128))

let test_program_requires_erased_space () =
  let f = make () in
  ignore (ok (Device.Flash.program f ~now:t0 ~sector:0 ~bytes:512));
  (match Device.Flash.program f ~now:t0 ~sector:0 ~bytes:1 with
  | Error Device.Flash.Overwrite_without_erase -> ()
  | Ok _ -> Alcotest.fail "overwrite allowed"
  | Error e -> Alcotest.failf "wrong error: %a" Device.Flash.pp_error e);
  (* Partial programming of remaining erased bytes is fine. *)
  let f2 = make () in
  ignore (ok (Device.Flash.program f2 ~now:t0 ~sector:0 ~bytes:200));
  ignore (ok (Device.Flash.program f2 ~now:t0 ~sector:0 ~bytes:312));
  Alcotest.(check int) "fully programmed" 512 (Device.Flash.programmed_bytes f2 ~sector:0)

let test_erase_recycles () =
  let f = make () in
  ignore (ok (Device.Flash.program f ~now:t0 ~sector:3 ~bytes:512));
  ignore (ok (Device.Flash.erase f ~now:t0 ~sector:3));
  Alcotest.(check int) "programmed reset" 0 (Device.Flash.programmed_bytes f ~sector:3);
  Alcotest.(check int) "erase counted" 1 (Device.Flash.erase_count f ~sector:3);
  ignore (ok (Device.Flash.program f ~now:t0 ~sector:3 ~bytes:512))

let test_wear_out () =
  let f = make ~endurance:3 () in
  for _ = 1 to 3 do
    ignore (ok (Device.Flash.erase f ~now:t0 ~sector:0))
  done;
  Alcotest.(check bool) "bad after endurance erases" true (Device.Flash.is_bad f ~sector:0);
  (match Device.Flash.erase f ~now:t0 ~sector:0 with
  | Error Device.Flash.Bad_sector -> ()
  | _ -> Alcotest.fail "erase of bad sector should fail");
  (match Device.Flash.read f ~now:t0 ~sector:0 ~bytes:1 with
  | Error Device.Flash.Bad_sector -> ()
  | _ -> Alcotest.fail "read of bad sector should fail");
  Alcotest.(check int) "bad count" 1 (Device.Flash.bad_sectors f);
  Alcotest.(check int) "capacity shrinks" ((128 - 1) * 512)
    (Device.Flash.live_capacity_bytes f)

let test_timing_matches_spec () =
  let f = make () in
  let now = Time.of_ns 1_000 in
  let op = ok (Device.Flash.read f ~now ~sector:0 ~bytes:512) in
  (* 250ns fixed + 100ns/B * 512 = 51.45us *)
  Alcotest.(check int) "read latency" 51_450
    (Time.span_to_ns (Device.Flash.latency ~now op));
  let op2 = ok (Device.Flash.program f ~now:(Time.of_ns 200_000) ~sector:1 ~bytes:512) in
  (* 4us + 10us/B*512 = 5.124ms *)
  Alcotest.(check int) "program latency" 5_124_000
    (Time.span_to_ns
       (Device.Flash.latency ~now:(Time.of_ns 200_000) op2))

let test_bank_contention () =
  let f = make () in
  (* A program occupies bank 0; a read to bank 0 waits, bank 1 does not. *)
  let prog = ok (Device.Flash.program f ~now:t0 ~sector:0 ~bytes:512) in
  let read_same = ok (Device.Flash.read f ~now:t0 ~sector:1 ~bytes:512) in
  Alcotest.(check bool) "same-bank read waited" true
    (Time.span_to_ns (Device.Flash.waited ~now:t0 read_same) > 0);
  Alcotest.(check bool) "read starts after program" true
    Time.(prog.Device.Flash.finish <= read_same.Device.Flash.start);
  let read_other = ok (Device.Flash.read f ~now:t0 ~sector:64 ~bytes:512) in
  Alcotest.(check int) "other bank no wait" 0
    (Time.span_to_ns (Device.Flash.waited ~now:t0 read_other));
  Alcotest.(check bool) "wait accounted" true
    (Time.span_to_ns (Device.Flash.read_wait f) > 0)

let test_traffic_counters () =
  let f = make () in
  ignore (ok (Device.Flash.read f ~now:t0 ~sector:0 ~bytes:100));
  ignore (ok (Device.Flash.program f ~now:t0 ~sector:0 ~bytes:200));
  ignore (ok (Device.Flash.erase f ~now:t0 ~sector:0));
  Alcotest.(check int) "reads" 1 (Device.Flash.reads f);
  Alcotest.(check int) "programs" 1 (Device.Flash.programs f);
  Alcotest.(check int) "erases" 1 (Device.Flash.erases f);
  Alcotest.(check int) "bytes read" 100 (Device.Flash.bytes_read f);
  Alcotest.(check int) "bytes programmed" 200 (Device.Flash.bytes_programmed f);
  Device.Flash.reset_stats f;
  Alcotest.(check int) "stats reset" 0 (Device.Flash.reads f);
  Alcotest.(check int) "wear preserved" 1 (Device.Flash.erase_count f ~sector:0)

let test_bytes_bounds () =
  let f = make () in
  Alcotest.check_raises "oversized read" (Invalid_argument "Flash: bytes out of range")
    (fun () -> ignore (Device.Flash.read f ~now:t0 ~sector:0 ~bytes:513))

(* Random interleavings never violate the page state machine. *)
let prop_state_machine =
  QCheck.Test.make ~name:"flash: programmed bytes never exceed sector size" ~count:100
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 100) (pair (int_bound 7) (int_bound 600))))
    (fun (seed, ops) ->
      ignore seed;
      let f = make ~endurance:1000 ~size_kib:4 () in
      List.iter
        (fun (sector, bytes) ->
          let bytes = min bytes 512 in
          match Device.Flash.program f ~now:t0 ~sector ~bytes with
          | Ok _ | Error Device.Flash.Overwrite_without_erase -> ()
          | Error Device.Flash.Bad_sector -> ())
        ops;
      List.for_all
        (fun sector -> Device.Flash.programmed_bytes f ~sector <= 512)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let prop_erase_counts_monotone =
  QCheck.Test.make ~name:"flash: erase counts only grow" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 7))
    (fun sectors ->
      let f = make ~endurance:1_000 ~size_kib:4 () in
      let before = Array.init 8 (fun s -> Device.Flash.erase_count f ~sector:s) in
      List.iter (fun s -> ignore (Device.Flash.erase f ~now:t0 ~sector:s)) sectors;
      Array.for_all Fun.id
        (Array.init 8 (fun s -> Device.Flash.erase_count f ~sector:s >= before.(s))))

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "erase-before-write" `Quick test_program_requires_erased_space;
    Alcotest.test_case "erase recycles" `Quick test_erase_recycles;
    Alcotest.test_case "wear out" `Quick test_wear_out;
    Alcotest.test_case "timing" `Quick test_timing_matches_spec;
    Alcotest.test_case "bank contention" `Quick test_bank_contention;
    Alcotest.test_case "traffic counters" `Quick test_traffic_counters;
    Alcotest.test_case "bounds" `Quick test_bytes_bounds;
    QCheck_alcotest.to_alcotest prop_state_machine;
    QCheck_alcotest.to_alcotest prop_erase_counts_monotone;
  ]
