open Sim

(* A small machine: 256KB flash, 2 banks, 8-sector segments. *)
let make ?(flash_kib = 256) ?(nbanks = 2) ?(buffer_blocks = 16) ?(delay = 30.0)
    ?(cleaner = Storage.Cleaner.Cost_benefit) ?(wear = Storage.Wear.Dynamic)
    ?(banking = Storage.Banks.Unified) ?(endurance = 1_000) ?hot_threshold () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create
      (Device.Flash.config ~nbanks ~endurance_override:endurance
         ~size_bytes:(flash_kib * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = buffer_blocks;
          writeback_delay = Time.span_s delay;
          refresh_on_rewrite = true;
        };
      cleaner;
      wear;
      banking;
      hot_threshold;
    }
  in
  (engine, Storage.Manager.create cfg ~engine ~flash ~dram, flash)

let advance engine span = Engine.run_until engine (Time.add (Engine.now engine) span)

let test_create_validation () =
  let engine = Engine.create () in
  let flash = Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(64 * 1024) ()) in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let bad cfg msg =
    Alcotest.check_raises msg (Invalid_argument ("Manager.create: " ^ msg)) (fun () ->
        ignore (Storage.Manager.create cfg ~engine ~flash ~dram))
  in
  bad
    { Storage.Manager.default_config with Storage.Manager.segment_sectors = 100 }
    "segment does not fit in a bank";
  bad
    { Storage.Manager.default_config with Storage.Manager.low_water = 0 }
    "watermarks must satisfy 1 <= low <= high"

let test_write_read_free_cycle () =
  let _engine, m, _ = make () in
  let b = Storage.Manager.alloc m in
  let wspan = Storage.Manager.write_block m b in
  Alcotest.(check bool) "buffered write is DRAM-fast" true (Time.span_to_us wspan < 100.0);
  let rspan = Storage.Manager.read_block m b in
  Alcotest.(check bool) "read of dirty block is DRAM-fast" true
    (Time.span_to_us rspan < 100.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "one client write" 1 stats.Storage.Manager.client_writes;
  Alcotest.(check int) "dirty" 1 stats.Storage.Manager.dirty_blocks;
  Storage.Manager.free_block m b;
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "cancelled" 1 stats.Storage.Manager.cancelled_blocks;
  Alcotest.check_raises "freed block unusable"
    (Invalid_argument (Printf.sprintf "Manager: unknown block %d" b)) (fun () ->
      ignore (Storage.Manager.read_block m b))

let test_flush_on_deadline () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  Alcotest.(check int) "nothing programmed yet" 0 (Device.Flash.programs flash);
  advance engine (Time.span_s 10.0);
  Alcotest.(check int) "flushed after deadline" 1 (Device.Flash.programs flash);
  Alcotest.(check bool) "block now in flash" true
    (Storage.Manager.segment_of_block m b <> None);
  (* Reading it now touches flash. *)
  let rspan = Storage.Manager.read_block m b in
  Alcotest.(check bool) "flash-speed read" true (Time.span_to_us rspan > 10.0)

let test_absorption () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  for _ = 1 to 10 do
    ignore (Storage.Manager.write_block m b)
  done;
  advance engine (Time.span_s 60.0);
  (* Ten writes, one program. *)
  Alcotest.(check int) "one program for ten writes" 1 (Device.Flash.programs flash);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "absorbed" 9 stats.Storage.Manager.absorbed_writes;
  Alcotest.(check (float 1e-9)) "reduction 90%" 0.9 stats.Storage.Manager.write_reduction

let test_cancellation_avoids_flash () =
  let engine, m, flash = make ~delay:5.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  Storage.Manager.free_block m b;
  advance engine (Time.span_s 60.0);
  Alcotest.(check int) "never reached flash" 0 (Device.Flash.programs flash)

let test_write_through_mode () =
  let _engine, m, flash = make ~buffer_blocks:0 () in
  let b = Storage.Manager.alloc m in
  let span = Storage.Manager.write_block m b in
  Alcotest.(check int) "programmed immediately" 1 (Device.Flash.programs flash);
  Alcotest.(check bool) "client pays flash latency" true (Time.span_to_ms span > 1.0)

let test_overwrite_supersedes_flash_copy () =
  let engine, m, _ = make ~delay:1.0 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 5.0);
  let seg1 = Option.get (Storage.Manager.segment_of_block m b) in
  ignore (Storage.Manager.write_block m b);
  Alcotest.(check bool) "flash copy superseded" true
    (Storage.Manager.segment_of_block m b = None);
  advance engine (Time.span_s 5.0);
  let seg2 = Option.get (Storage.Manager.segment_of_block m b) in
  ignore (seg1, seg2);
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "two programs" 2 stats.Storage.Manager.blocks_flushed

let test_cleaning_triggers_and_preserves () =
  (* Fill flash with live+dead data until cleaning must run. *)
  let engine, m, flash = make ~flash_kib:64 ~delay:0.5 ~buffer_blocks:4 () in
  (* 64KB = 128 sectors = 16 segments of 8. Write 100 blocks, rewrite them
     to create garbage, forcing cleaning. *)
  let blocks = Array.init 60 (fun _ -> Storage.Manager.alloc m) in
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  advance engine (Time.span_s 5.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "cleaning ran" true (stats.Storage.Manager.cleanings > 0);
  Alcotest.(check bool) "erases happened" true (Device.Flash.erases flash > 0);
  (* Every block still lives exactly once. *)
  Alcotest.(check int) "all live" 60 stats.Storage.Manager.live_blocks;
  Array.iter
    (fun b ->
      Alcotest.(check bool) "block still mapped" true
        (Storage.Manager.segment_of_block m b <> None))
    blocks

let test_out_of_space () =
  let _engine, m, _ = make ~flash_kib:32 ~buffer_blocks:0 () in
  (* 32KB = 64 sectors; write-through fills them with live data. *)
  Alcotest.check_raises "out of space" Storage.Manager.Out_of_space (fun () ->
      for _ = 1 to 70 do
        let b = Storage.Manager.alloc m in
        ignore (Storage.Manager.write_block m b)
      done)

let test_load_cold_placement_partitioned () =
  let _engine, m, _ =
    make ~nbanks:2 ~banking:(Storage.Banks.Partitioned { write_banks = 1 }) ()
  in
  (* Cold loads land in the read-mostly banks (bank >= 1). *)
  for _ = 1 to 20 do
    let b = Storage.Manager.alloc m in
    Storage.Manager.load_cold m b;
    let seg = Option.get (Storage.Manager.segment_of_block m b) in
    let segs_per_bank = Storage.Manager.nsegments m / 2 in
    Alcotest.(check bool) "cold in read bank" true (seg >= segs_per_bank)
  done;
  (* Fresh writes land in the write bank. *)
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  ignore (Storage.Manager.flush_all m);
  let seg = Option.get (Storage.Manager.segment_of_block m b) in
  Alcotest.(check bool) "fresh in write bank" true
    (seg < Storage.Manager.nsegments m / 2)

let test_flush_all () =
  let _engine, m, flash = make () in
  let blocks = List.init 5 (fun _ -> Storage.Manager.alloc m) in
  List.iter (fun b -> ignore (Storage.Manager.write_block m b)) blocks;
  let span = Storage.Manager.flush_all m in
  Alcotest.(check int) "all programmed" 5 (Device.Flash.programs flash);
  Alcotest.(check bool) "took flash time" true (Time.span_to_ms span > 5.0);
  Alcotest.(check int) "buffer empty" 0
    (Storage.Manager.stats m).Storage.Manager.dirty_blocks

let test_hot_block_retention () =
  let engine, m, flash = make ~delay:2.0 ~hot_threshold:3.0 () in
  let hot = Storage.Manager.alloc m in
  let cold = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m cold);
  (* Keep the hot block hot across several deadlines. *)
  for _ = 1 to 10 do
    ignore (Storage.Manager.write_block m hot);
    advance engine (Time.span_s 1.0)
  done;
  advance engine (Time.span_s 4.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "hot retained at least once" true
    (stats.Storage.Manager.hot_retained > 0);
  Alcotest.(check int) "cold flushed" 1
    (Device.Flash.programs flash - stats.Storage.Manager.blocks_cleaned
    |> min (Device.Flash.programs flash));
  ignore cold

let test_wear_leveling_reduces_spread () =
  (* Hammer a hot set; static leveling should keep the erase spread below
     the none policy's. *)
  let run wear =
    let engine, m, _ =
      make ~flash_kib:32 ~buffer_blocks:4 ~delay:0.2 ~wear ~endurance:100_000 ()
    in
    (* 8 cold blocks pinning segments + hot rewrites *)
    let cold = Array.init 24 (fun _ -> Storage.Manager.alloc m) in
    Array.iter (fun b -> Storage.Manager.load_cold m b) cold;
    let hot = Array.init 8 (fun _ -> Storage.Manager.alloc m) in
    for _ = 1 to 300 do
      Array.iter (fun b -> ignore (Storage.Manager.write_block m b)) hot;
      advance engine (Time.span_s 1.0)
    done;
    let e = Storage.Manager.wear_evenness m in
    e.Storage.Wear.max_erases - e.Storage.Wear.min_erases
  in
  let spread_none = run Storage.Wear.None_ in
  let spread_static = run (Storage.Wear.Static { spread_threshold = 4 }) in
  Alcotest.(check bool)
    (Printf.sprintf "static spread (%d) < none spread (%d)" spread_static spread_none)
    true (spread_static < spread_none)

let test_watermark_flush () =
  (* A long deadline but a 50% occupancy watermark: crossing it starts
     background flushing well before any deadline expires. *)
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(256 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      flush_watermark = Some 0.5;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 16;
          writeback_delay = Time.span_s 1000.0;
          refresh_on_rewrite = true;
        };
    }
  in
  let m = Storage.Manager.create cfg ~engine ~flash ~dram in
  for _ = 1 to 12 do
    let b = Storage.Manager.alloc m in
    ignore (Storage.Manager.write_block m b)
  done;
  advance engine (Time.span_s 5.0);
  let stats = Storage.Manager.stats m in
  Alcotest.(check bool) "flushed ahead of deadlines" true
    (stats.Storage.Manager.blocks_flushed > 0);
  Alcotest.(check bool) "occupancy brought under the watermark" true
    (stats.Storage.Manager.dirty_blocks <= 8);
  (* Without the watermark, nothing would have flushed yet. *)
  let engine2 = Engine.create () in
  let flash2 =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(256 * 1024) ())
  in
  let dram2 = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let m2 =
    Storage.Manager.create
      { cfg with Storage.Manager.flush_watermark = None }
      ~engine:engine2 ~flash:flash2 ~dram:dram2
  in
  for _ = 1 to 12 do
    let b = Storage.Manager.alloc m2 in
    ignore (Storage.Manager.write_block m2 b)
  done;
  advance engine2 (Time.span_s 5.0);
  Alcotest.(check int) "control: all still buffered" 12
    (Storage.Manager.stats m2).Storage.Manager.dirty_blocks

let test_reset_traffic () =
  let engine, m, flash = make ~delay:0.5 () in
  let b = Storage.Manager.alloc m in
  ignore (Storage.Manager.write_block m b);
  advance engine (Time.span_s 2.0);
  Storage.Manager.reset_traffic m;
  let stats = Storage.Manager.stats m in
  Alcotest.(check int) "writes reset" 0 stats.Storage.Manager.client_writes;
  Alcotest.(check int) "flush reset" 0 stats.Storage.Manager.blocks_flushed;
  Alcotest.(check int) "device reset" 0 (Device.Flash.programs flash);
  (* Placement survives the reset. *)
  Alcotest.(check bool) "mapping intact" true (Storage.Manager.segment_of_block m b <> None)

(* Device programs must exactly account for the manager's flush, clean and
   cold-load traffic: nothing programs flash except through those paths. *)
let prop_program_accounting =
  QCheck.Test.make ~name:"manager: device programs = flushed + cleaned + cold" ~count:40
    QCheck.(list_of_size (Gen.int_range 10 100) (pair (int_bound 19) (int_bound 4)))
    (fun ops ->
      let engine, m, flash = make ~flash_kib:64 ~buffer_blocks:8 ~delay:1.0 () in
      let blocks = Array.init 20 (fun _ -> Storage.Manager.alloc m) in
      List.iter
        (fun (i, action) ->
          match action with
          | 0 | 1 -> ignore (Storage.Manager.write_block m blocks.(i))
          | 2 -> ignore (Storage.Manager.read_block m blocks.(i))
          | 3 -> advance engine (Time.span_s 2.0)
          | _ ->
            (* Cold loads need a block with no data yet: use a fresh one. *)
            Storage.Manager.load_cold m (Storage.Manager.alloc m))
        ops;
      ignore (Storage.Manager.flush_all m);
      let stats = Storage.Manager.stats m in
      Device.Flash.programs flash
      = stats.Storage.Manager.blocks_flushed + stats.Storage.Manager.blocks_cleaned
        + stats.Storage.Manager.cold_loads
      && Device.Flash.bytes_programmed flash = 512 * Device.Flash.programs flash)

(* The file system is consistent at *every* instant, not just at rest:
   stop the clock mid-flush, mid-cleaning, and check. *)
let test_consistency_mid_flight () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(128 * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:Units.mib ~battery_backed:true () in
  let cfg =
    {
      Storage.Manager.default_config with
      Storage.Manager.segment_sectors = 8;
      buffer =
        {
          Storage.Write_buffer.capacity_blocks = 16;
          writeback_delay = Time.span_s 1.0;
          refresh_on_rewrite = false;
        };
    }
  in
  let m = Storage.Manager.create cfg ~engine ~flash ~dram in
  let fs = Fs.Memfs.create_fs ~manager:m () in
  let rng = Rng.create ~seed:41 in
  for round = 1 to 60 do
    let path = Printf.sprintf "/f%d" (Rng.int rng 8) in
    (match Fs.Memfs.write fs path ~offset:0 ~bytes:(512 * (1 + Rng.int rng 6)) with
    | Ok _ -> ()
    | Error Fs.Fs_error.Enoent ->
      ignore (Fs.Memfs.create fs path);
      ignore (Fs.Memfs.write fs path ~offset:0 ~bytes:512)
    | Error e -> Alcotest.failf "write: %a" Fs.Fs_error.pp e);
    if Rng.bernoulli rng ~p:0.2 then ignore (Fs.Memfs.unlink fs path);
    (* Advance by an odd sub-second step so we land between flush events. *)
    advance engine (Time.span_ms (50.0 +. float_of_int (Rng.int rng 900)));
    match Fs.Memfs.check fs with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "round %d: fsck: %s" round msg
  done

let prop_no_data_loss_random_ops =
  QCheck.Test.make ~name:"manager: random ops never lose a live block" ~count:30
    QCheck.(list_of_size (Gen.int_range 10 120) (pair (int_bound 19) (int_bound 3)))
    (fun ops ->
      let engine, m, _ = make ~flash_kib:64 ~buffer_blocks:8 ~delay:1.0 () in
      let blocks = Array.init 20 (fun _ -> Storage.Manager.alloc m) in
      let live = Array.make 20 false in
      List.iter
        (fun (i, action) ->
          match action with
          | 0 | 1 ->
            ignore (Storage.Manager.write_block m blocks.(i));
            live.(i) <- true
          | 2 ->
            if live.(i) then ignore (Storage.Manager.read_block m blocks.(i))
          | _ -> advance engine (Time.span_s 2.0))
        ops;
      ignore (Storage.Manager.flush_all m);
      (* Every written block has exactly one live flash home. *)
      Array.for_all2
        (fun b is_live ->
          if is_live then Storage.Manager.segment_of_block m b <> None else true)
        blocks live)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "write/read/free cycle" `Quick test_write_read_free_cycle;
    Alcotest.test_case "flush on deadline" `Quick test_flush_on_deadline;
    Alcotest.test_case "absorption" `Quick test_absorption;
    Alcotest.test_case "cancellation" `Quick test_cancellation_avoids_flash;
    Alcotest.test_case "write-through" `Quick test_write_through_mode;
    Alcotest.test_case "overwrite supersedes" `Quick test_overwrite_supersedes_flash_copy;
    Alcotest.test_case "cleaning preserves data" `Quick test_cleaning_triggers_and_preserves;
    Alcotest.test_case "out of space" `Quick test_out_of_space;
    Alcotest.test_case "partitioned placement" `Quick test_load_cold_placement_partitioned;
    Alcotest.test_case "flush_all" `Quick test_flush_all;
    Alcotest.test_case "hot retention" `Quick test_hot_block_retention;
    Alcotest.test_case "wear leveling spread" `Slow test_wear_leveling_reduces_spread;
    Alcotest.test_case "watermark flush" `Quick test_watermark_flush;
    Alcotest.test_case "consistency mid-flight" `Quick test_consistency_mid_flight;
    Alcotest.test_case "reset traffic" `Quick test_reset_traffic;
    QCheck_alcotest.to_alcotest prop_program_accounting;
    QCheck_alcotest.to_alcotest prop_no_data_loss_random_ops;
  ]
