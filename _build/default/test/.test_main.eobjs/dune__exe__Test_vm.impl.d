test/test_vm.ml: Alcotest Array Device Engine List Result Rng Sim Storage Time Units Vmem
