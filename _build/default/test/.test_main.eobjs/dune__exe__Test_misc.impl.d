test/test_misc.ml: Alcotest Device Engine Fmt Fs Option Rng Sim Ssmc Stat Storage String Time Trace Units Vmem
