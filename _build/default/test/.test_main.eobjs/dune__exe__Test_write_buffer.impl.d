test/test_write_buffer.ml: Alcotest List QCheck QCheck_alcotest Sim Storage Time
