test/test_memfs.ml: Alcotest Device Engine Fs Gen Hashtbl List Printf QCheck QCheck_alcotest Result Sim Storage Time Units
