test/test_segment.ml: Alcotest List QCheck QCheck_alcotest Sim Storage Time
