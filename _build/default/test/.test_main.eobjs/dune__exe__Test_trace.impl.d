test/test_trace.ml: Alcotest Engine Filename Fun Hashtbl List Printf Rng Sim Sys Time Trace
