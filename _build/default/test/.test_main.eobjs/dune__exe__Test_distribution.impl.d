test/test_distribution.ml: Alcotest Array Distribution Float List Printf QCheck QCheck_alcotest Rng Sim
