test/test_device.ml: Alcotest Device Sim Time Units
