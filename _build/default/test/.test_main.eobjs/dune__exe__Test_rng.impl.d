test/test_rng.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Rng Sim
