test/test_time.ml: Alcotest Fmt QCheck QCheck_alcotest Sim Time
