test/test_flash.ml: Alcotest Array Device Fun Gen List QCheck QCheck_alcotest Sim Time
