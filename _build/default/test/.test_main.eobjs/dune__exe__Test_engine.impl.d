test/test_engine.ml: Alcotest Engine List Sim Time
