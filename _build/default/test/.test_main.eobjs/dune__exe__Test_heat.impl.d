test/test_heat.ml: Alcotest QCheck QCheck_alcotest Sim Storage Time
