test/test_policies.ml: Alcotest Array List Option Result Sim Storage Time
