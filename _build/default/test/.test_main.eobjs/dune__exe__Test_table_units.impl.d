test/test_table_units.ml: Alcotest List Sim String Table Time Units
