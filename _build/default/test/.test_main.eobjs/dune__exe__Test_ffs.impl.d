test/test_ffs.ml: Alcotest Device Engine Fs Gen Hashtbl List Printf QCheck QCheck_alcotest Result Rng Sim Time Units
