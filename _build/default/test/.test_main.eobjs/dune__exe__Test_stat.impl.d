test/test_stat.ml: Alcotest Float Gen List QCheck QCheck_alcotest Sim Stat
