test/test_ssmc.ml: Alcotest Device Engine List Printf Rng Sim Ssmc Stat Storage Time Trace Units
