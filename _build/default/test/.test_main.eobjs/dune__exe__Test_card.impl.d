test/test_card.ml: Alcotest Device Engine Fs Rng Sim Ssmc Storage Time Units Vmem
