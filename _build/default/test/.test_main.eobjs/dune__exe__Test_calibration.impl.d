test/test_calibration.ml: Alcotest List Printf Rng Sim Time Trace
