test/test_integration.ml: Alcotest Device Engine Filename Fs Fun List Option Result Rng Sim Ssmc Storage Sys Time Trace Units
