test/test_exec.ml: Alcotest Array Device Engine Float Printf Rng Sim Storage Time Units Vmem
