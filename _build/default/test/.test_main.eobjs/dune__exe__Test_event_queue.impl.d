test/test_event_queue.ml: Alcotest Event_queue List Option QCheck QCheck_alcotest Sim Time
