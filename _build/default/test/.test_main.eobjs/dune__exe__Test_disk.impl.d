test/test_disk.ml: Alcotest Device Float QCheck QCheck_alcotest Rng Sim Time Units
