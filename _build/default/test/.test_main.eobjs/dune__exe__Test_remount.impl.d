test/test_remount.ml: Alcotest Array Device Engine Printf Sim Storage Time Units
