test/test_fs_base.ml: Alcotest Fs Gen List QCheck QCheck_alcotest
