test/test_manager.ml: Alcotest Array Device Engine Fs Gen List Option Printf QCheck QCheck_alcotest Rng Sim Storage Time Units
