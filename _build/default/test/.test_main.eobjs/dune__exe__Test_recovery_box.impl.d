test/test_recovery_box.ml: Alcotest Printf QCheck QCheck_alcotest Rng Sim Ssmc
