open Sim

let make_manager ?(flash_kib = 512) () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:2 ~size_bytes:(flash_kib * 1024) ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager =
    Storage.Manager.create
      { Storage.Manager.default_config with Storage.Manager.segment_sectors = 8 }
      ~engine ~flash ~dram
  in
  (engine, manager)

let make_vm ?(frames = 8) ?(swap = Vmem.Vm.No_swap) () =
  let engine, manager = make_manager () in
  let vm =
    Vmem.Vm.create { Vmem.Vm.page_bytes = 4096; dram_frames = frames; swap } ~engine
      ~manager
  in
  (engine, manager, vm)

(* --- Page table ---------------------------------------------------------------- *)

let test_page_table_map_translate () =
  let pt = Vmem.Page_table.create () in
  Vmem.Page_table.map pt ~vpn:5 ~prot:Vmem.Page_table.prot_rw ~cow:false
    (Vmem.Page_table.Dram_frame 3);
  (match Vmem.Page_table.translate pt ~vpn:5 ~access:`Read with
  | Ok pte ->
    Alcotest.(check bool) "referenced set" true pte.Vmem.Page_table.referenced
  | Error _ -> Alcotest.fail "translate failed");
  Alcotest.(check bool) "write allowed" true
    (Result.is_ok (Vmem.Page_table.translate pt ~vpn:5 ~access:`Write));
  Alcotest.(check bool) "exec denied" true
    (Vmem.Page_table.translate pt ~vpn:5 ~access:`Exec = Error Vmem.Page_table.Protection);
  Alcotest.(check bool) "unmapped" true
    (Vmem.Page_table.translate pt ~vpn:6 ~access:`Read = Error Vmem.Page_table.Not_mapped);
  Alcotest.check_raises "double map" (Invalid_argument "Page_table.map: already mapped")
    (fun () ->
      Vmem.Page_table.map pt ~vpn:5 ~prot:Vmem.Page_table.prot_r ~cow:false
        Vmem.Page_table.Untouched)

let test_page_table_protect_unmap () =
  let pt = Vmem.Page_table.create () in
  Vmem.Page_table.map pt ~vpn:1 ~prot:Vmem.Page_table.prot_r ~cow:false
    Vmem.Page_table.Untouched;
  Alcotest.(check bool) "protect" true (Vmem.Page_table.protect pt ~vpn:1 Vmem.Page_table.prot_rw);
  Alcotest.(check bool) "write now ok" true
    (Result.is_ok (Vmem.Page_table.translate pt ~vpn:1 ~access:`Write));
  Alcotest.(check bool) "unmap returns pte" true (Vmem.Page_table.unmap pt ~vpn:1 <> None);
  Alcotest.(check bool) "gone" true (Vmem.Page_table.unmap pt ~vpn:1 = None);
  Alcotest.(check int) "empty" 0 (Vmem.Page_table.mapped_pages pt)

(* --- Address space ---------------------------------------------------------------- *)

let test_addr_space_regions () =
  let space = Vmem.Addr_space.create ~page_bytes:4096 in
  let text = Vmem.Addr_space.add_region space ~kind:Vmem.Addr_space.Text ~bytes:10_000 in
  let data = Vmem.Addr_space.add_region space ~kind:Vmem.Addr_space.Data ~bytes:1 in
  Alcotest.(check int) "text pages" 3 text.Vmem.Addr_space.pages;
  Alcotest.(check int) "data pages" 1 data.Vmem.Addr_space.pages;
  Alcotest.(check bool) "no overlap" true
    (data.Vmem.Addr_space.base >= text.Vmem.Addr_space.base + (3 * 4096));
  Alcotest.(check bool) "page zero never used" true (text.Vmem.Addr_space.base >= 4096);
  (match Vmem.Addr_space.region_of_addr space (text.Vmem.Addr_space.base + 100) with
  | Some r -> Alcotest.(check bool) "lookup" true (r.Vmem.Addr_space.kind = Vmem.Addr_space.Text)
  | None -> Alcotest.fail "region lookup failed");
  Alcotest.check_raises "page bound" (Invalid_argument "Addr_space.page_of_region")
    (fun () -> ignore (Vmem.Addr_space.page_of_region text ~page_bytes:4096 3))

let test_addr_space_bad_page_size () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Addr_space.create: page size must be a positive power of two")
    (fun () -> ignore (Vmem.Addr_space.create ~page_bytes:3000))

(* --- VM faults ----------------------------------------------------------------------- *)

let ok = function
  | Ok span -> span
  | Error _ -> Alcotest.fail "unexpected fault"

(* Cold preloads leave the flash banks busy; let them settle so measured
   accesses start from an idle device. *)
let settle engine manager =
  let flash = Storage.Manager.flash manager in
  let busy = ref (Engine.now engine) in
  for bank = 0 to Device.Flash.nbanks flash - 1 do
    busy := Time.max !busy (Device.Flash.bank_busy_until flash ~bank)
  done;
  Engine.run_until engine (Time.add !busy (Time.span_s 1.0))

let test_anon_zero_fill () =
  let _e, _m, vm = make_vm () in
  let space = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:8192
  in
  let span = ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Write ()) in
  Alcotest.(check bool) "zero-fill fault charged" true (Time.span_to_us span > 1.0);
  let stats = Vmem.Vm.stats vm in
  Alcotest.(check int) "one fault" 1 stats.Vmem.Vm.faults;
  Alcotest.(check int) "one zero fill" 1 stats.Vmem.Vm.zero_fills;
  Alcotest.(check int) "one frame" 1 stats.Vmem.Vm.frames_in_use;
  (* Second touch: no fault, DRAM speed. *)
  let span2 = ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Read ()) in
  Alcotest.(check bool) "resident access fast" true (Time.span_to_us span2 < 5.0);
  Alcotest.(check int) "still one fault" 1 (Vmem.Vm.stats vm).Vmem.Vm.faults

let test_unmapped_fault () =
  let _e, _m, vm = make_vm () in
  let space = Vmem.Vm.new_space vm in
  Alcotest.(check bool) "not mapped" true
    (Vmem.Vm.touch vm space ~addr:123_456_789 ~access:`Read () = Error Vmem.Vm.Not_mapped)

let test_file_mapping_reads_in_place () =
  let e, manager, vm = make_vm () in
  let space = Vmem.Vm.new_space vm in
  (* Install 8KB of cold file data. *)
  let blocks =
    Array.init 16 (fun _ ->
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b;
        b)
  in
  settle e manager;
  let region, _ =
    Vmem.Vm.map_file vm space ~kind:Vmem.Addr_space.Mapped_file
      ~prot:Vmem.Page_table.prot_r ~cow:false ~blocks ~bytes:8192
  in
  let span = ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Read ()) in
  (* A 64-byte cache-line read out of flash: ~6.6us, no DRAM copy. *)
  Alcotest.(check bool) "flash-speed in-place read" true
    (Time.span_to_us span > 2.0 && Time.span_to_us span < 100.0);
  Alcotest.(check int) "no frames consumed" 0 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  (* Read-only mapping rejects writes. *)
  Alcotest.(check bool) "write denied" true
    (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Write ()
    = Error Vmem.Vm.Protection)

let test_cow_write_goes_to_buffer () =
  let e, manager, vm = make_vm () in
  let space = Vmem.Vm.new_space vm in
  let blocks =
    Array.init 8 (fun _ ->
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b;
        b)
  in
  settle e manager;
  let region, _ =
    Vmem.Vm.map_file vm space ~kind:Vmem.Addr_space.Mapped_file
      ~prot:Vmem.Page_table.prot_r ~cow:true ~blocks ~bytes:4096
  in
  let before = (Storage.Manager.stats manager).Storage.Manager.dirty_blocks in
  let span = ok (Vmem.Vm.touch vm space ~addr:(region.Vmem.Addr_space.base + 600) ~access:`Write ()) in
  Alcotest.(check bool) "COW write is DRAM-fast" true (Time.span_to_us span < 100.0);
  let stats = Storage.Manager.stats manager in
  Alcotest.(check int) "block entered the write buffer" (before + 1)
    stats.Storage.Manager.dirty_blocks;
  Alcotest.(check int) "cow recorded" 1 (Vmem.Vm.stats vm).Vmem.Vm.cow_writes;
  (* The touched block's flash copy is superseded; others remain. *)
  Alcotest.(check bool) "superseded" true
    (Storage.Manager.segment_of_block manager blocks.(1) = None);
  Alcotest.(check bool) "others intact" true
    (Storage.Manager.segment_of_block manager blocks.(0) <> None)

let test_swap_to_flash () =
  let _e, manager, vm = make_vm ~frames:2 ~swap:Vmem.Vm.Swap_flash () in
  let space = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:(4 * 4096)
  in
  (* Touch four pages with only two frames: two must swap out. *)
  for i = 0 to 3 do
    ignore (ok (Vmem.Vm.touch vm space ~addr:(region.Vmem.Addr_space.base + (i * 4096)) ~access:`Write ()))
  done;
  let stats = Vmem.Vm.stats vm in
  Alcotest.(check bool) "swapped out" true (stats.Vmem.Vm.swap_outs >= 2);
  Alcotest.(check int) "frames capped" 2 stats.Vmem.Vm.frames_in_use;
  (* Touch the first page again: swap-in. *)
  ignore (ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Read ()));
  Alcotest.(check bool) "swapped in" true ((Vmem.Vm.stats vm).Vmem.Vm.swap_ins >= 1);
  ignore manager

let test_swap_to_disk () =
  let engine, manager = make_manager () in
  let disk = Device.Disk.create ~rng:(Rng.create ~seed:3) () in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 1; swap = Vmem.Vm.Swap_disk disk }
      ~engine ~manager
  in
  let space = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:(2 * 4096)
  in
  ignore (ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Write ()));
  let span =
    ok (Vmem.Vm.touch vm space ~addr:(region.Vmem.Addr_space.base + 4096) ~access:`Write ())
  in
  (* The second touch evicts to disk: mechanical latency. *)
  Alcotest.(check bool) "paging costs milliseconds" true (Time.span_to_ms span > 1.0);
  Alcotest.(check int) "disk wrote" 1 (Device.Disk.writes disk)

let test_no_swap_out_of_memory () =
  let _e, _m, vm = make_vm ~frames:1 ~swap:Vmem.Vm.No_swap () in
  let space = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:(2 * 4096)
  in
  ignore (ok (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Write ()));
  Alcotest.check_raises "out of memory" Vmem.Vm.Out_of_memory (fun () ->
      ignore
        (Vmem.Vm.touch vm space ~addr:(region.Vmem.Addr_space.base + 4096) ~access:`Write ()))

let test_unmap_releases_frames () =
  let _e, _m, vm = make_vm ~frames:4 () in
  let space = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:(3 * 4096)
  in
  for i = 0 to 2 do
    ignore (ok (Vmem.Vm.touch vm space ~addr:(region.Vmem.Addr_space.base + (i * 4096)) ~access:`Write ()))
  done;
  Alcotest.(check int) "frames used" 3 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  Vmem.Vm.unmap_region vm space region;
  Alcotest.(check int) "frames released" 0 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  Alcotest.(check bool) "address invalid now" true
    (Vmem.Vm.touch vm space ~addr:region.Vmem.Addr_space.base ~access:`Read ()
    = Error Vmem.Vm.Not_mapped)

let test_shared_text_across_spaces () =
  (* Two processes map the same flash-resident text: one physical copy,
     zero DRAM frames — the single-level store's sharing win. *)
  let e, manager, vm = make_vm () in
  let blocks =
    Array.init 16 (fun _ ->
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b;
        b)
  in
  settle e manager;
  let launch () =
    let space = Vmem.Vm.new_space vm in
    let region, _ =
      Vmem.Vm.map_file vm space ~kind:Vmem.Addr_space.Text ~prot:Vmem.Page_table.prot_rx
        ~cow:false ~blocks ~bytes:8192
    in
    (space, region)
  in
  let s1, r1 = launch () in
  let s2, r2 = launch () in
  ignore (ok (Vmem.Vm.touch vm s1 ~addr:r1.Vmem.Addr_space.base ~access:`Exec ()));
  ignore (ok (Vmem.Vm.touch vm s2 ~addr:r2.Vmem.Addr_space.base ~access:`Exec ()));
  Alcotest.(check int) "no frames for either process" 0
    (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  (* Each space has its own protection: revoking exec in one does not
     affect the other. *)
  let vpn1 = Vmem.Addr_space.vpn_of_addr s1 r1.Vmem.Addr_space.base in
  ignore (Vmem.Page_table.protect (Vmem.Addr_space.page_table s1) ~vpn:vpn1
            Vmem.Page_table.prot_r);
  Alcotest.(check bool) "space 1 exec revoked" true
    (Vmem.Vm.touch vm s1 ~addr:r1.Vmem.Addr_space.base ~access:`Exec ()
    = Error Vmem.Vm.Protection);
  Alcotest.(check bool) "space 2 unaffected" true
    (Result.is_ok (Vmem.Vm.touch vm s2 ~addr:r2.Vmem.Addr_space.base ~access:`Exec ()))

(* --- Fork: clone_space with copy-on-write anonymous memory ----------------- *)

let test_clone_shares_then_copies () =
  let _e, _m, vm = make_vm ~frames:8 () in
  let parent = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm parent ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:4096
  in
  let addr = region.Vmem.Addr_space.base in
  ignore (ok (Vmem.Vm.touch vm parent ~addr ~access:`Write ()));
  Alcotest.(check int) "one frame before fork" 1 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  let child, span = Vmem.Vm.clone_space vm parent in
  Alcotest.(check bool) "fork is cheap" true (Time.span_to_us span < 50.0);
  (* Reads share the single frame. *)
  ignore (ok (Vmem.Vm.touch vm parent ~addr ~access:`Read ()));
  ignore (ok (Vmem.Vm.touch vm child ~addr ~access:`Read ()));
  Alcotest.(check int) "still one frame" 1 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  (* The child's first write copies the page. *)
  let cow_before = (Vmem.Vm.stats vm).Vmem.Vm.cow_writes in
  ignore (ok (Vmem.Vm.touch vm child ~addr ~access:`Write ()));
  Alcotest.(check int) "cow write counted" (cow_before + 1)
    (Vmem.Vm.stats vm).Vmem.Vm.cow_writes;
  Alcotest.(check int) "two frames after the copy" 2
    (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use;
  (* Both sides are independently writable afterwards. *)
  ignore (ok (Vmem.Vm.touch vm parent ~addr ~access:`Write ()));
  ignore (ok (Vmem.Vm.touch vm child ~addr ~access:`Write ()));
  Alcotest.(check int) "no further copies" (cow_before + 1)
    (Vmem.Vm.stats vm).Vmem.Vm.cow_writes

let test_clone_last_sharer_skips_copy () =
  let _e, _m, vm = make_vm ~frames:8 () in
  let parent = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm parent ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:4096
  in
  let addr = region.Vmem.Addr_space.base in
  ignore (ok (Vmem.Vm.touch vm parent ~addr ~access:`Write ()));
  let child, _ = Vmem.Vm.clone_space vm parent in
  (* The child exits before writing: its mappings are released. *)
  List.iter (Vmem.Vm.unmap_region vm child) (Vmem.Addr_space.regions child);
  let cow_before = (Vmem.Vm.stats vm).Vmem.Vm.cow_writes in
  ignore (ok (Vmem.Vm.touch vm parent ~addr ~access:`Write ()));
  Alcotest.(check int) "write permission reclaimed without a copy" cow_before
    (Vmem.Vm.stats vm).Vmem.Vm.cow_writes;
  Alcotest.(check int) "one frame" 1 (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use

let test_clone_shares_xip_text () =
  let e, manager, vm = make_vm () in
  let blocks =
    Array.init 8 (fun _ ->
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b;
        b)
  in
  settle e manager;
  let parent = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_file vm parent ~kind:Vmem.Addr_space.Text ~prot:Vmem.Page_table.prot_rx
      ~cow:false ~blocks ~bytes:4096
  in
  let child, _ = Vmem.Vm.clone_space vm parent in
  ignore (ok (Vmem.Vm.touch vm parent ~addr:region.Vmem.Addr_space.base ~access:`Exec ()));
  ignore (ok (Vmem.Vm.touch vm child ~addr:region.Vmem.Addr_space.base ~access:`Exec ()));
  Alcotest.(check int) "text costs no frames in either space" 0
    (Vmem.Vm.stats vm).Vmem.Vm.frames_in_use

let test_clone_swapped_pages () =
  let _e, _m, vm = make_vm ~frames:1 ~swap:Vmem.Vm.Swap_flash () in
  let parent = Vmem.Vm.new_space vm in
  let region, _ =
    Vmem.Vm.map_anon vm parent ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
      ~bytes:(2 * 4096)
  in
  let a0 = region.Vmem.Addr_space.base in
  let a1 = a0 + 4096 in
  ignore (ok (Vmem.Vm.touch vm parent ~addr:a0 ~access:`Write ()));
  ignore (ok (Vmem.Vm.touch vm parent ~addr:a1 ~access:`Write ()));
  (* a0 is now swapped out.  Fork shares the slot. *)
  let child, _ = Vmem.Vm.clone_space vm parent in
  let swap_ins_before = (Vmem.Vm.stats vm).Vmem.Vm.swap_ins in
  ignore (ok (Vmem.Vm.touch vm child ~addr:a0 ~access:`Read ()));
  Alcotest.(check int) "one swap-in serves both sharers" (swap_ins_before + 1)
    (Vmem.Vm.stats vm).Vmem.Vm.swap_ins;
  (* And the write afterwards still resolves COW. *)
  ignore (ok (Vmem.Vm.touch vm child ~addr:a0 ~access:`Write ()))

let suite =
  [
    Alcotest.test_case "page table map/translate" `Quick test_page_table_map_translate;
    Alcotest.test_case "shared text across spaces" `Quick test_shared_text_across_spaces;
    Alcotest.test_case "page table protect/unmap" `Quick test_page_table_protect_unmap;
    Alcotest.test_case "address space regions" `Quick test_addr_space_regions;
    Alcotest.test_case "bad page size" `Quick test_addr_space_bad_page_size;
    Alcotest.test_case "anon zero-fill" `Quick test_anon_zero_fill;
    Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
    Alcotest.test_case "file map reads in place" `Quick test_file_mapping_reads_in_place;
    Alcotest.test_case "COW write to buffer" `Quick test_cow_write_goes_to_buffer;
    Alcotest.test_case "swap to flash" `Quick test_swap_to_flash;
    Alcotest.test_case "swap to disk" `Quick test_swap_to_disk;
    Alcotest.test_case "no swap -> OOM" `Quick test_no_swap_out_of_memory;
    Alcotest.test_case "unmap releases" `Quick test_unmap_releases_frames;
    Alcotest.test_case "fork shares then copies" `Quick test_clone_shares_then_copies;
    Alcotest.test_case "fork last sharer" `Quick test_clone_last_sharer_skips_copy;
    Alcotest.test_case "fork shares XIP text" `Quick test_clone_shares_xip_text;
    Alcotest.test_case "fork with swapped pages" `Quick test_clone_swapped_pages;
  ]
