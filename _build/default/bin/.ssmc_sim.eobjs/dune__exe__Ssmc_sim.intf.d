bin/ssmc_sim.mli:
