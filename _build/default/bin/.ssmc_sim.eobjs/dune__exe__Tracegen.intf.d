bin/tracegen.mli:
