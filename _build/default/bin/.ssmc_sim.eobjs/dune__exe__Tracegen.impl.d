bin/tracegen.ml: Arg Cmd Cmdliner Fmt List Rng Sim Term Time Trace
