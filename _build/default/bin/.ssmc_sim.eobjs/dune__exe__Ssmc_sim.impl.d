bin/ssmc_sim.ml: Arg Cmd Cmdliner Float Fmt List Logs Logs_fmt Printf Rng Sim Ssmc Storage Term Time Trace
