(* E2 — Section 2's technology-trend extrapolation.
   Shape to reproduce: DRAM and flash $/MB and MB/in3 improve ~40%/yr vs
   disk's ~25%/yr, so the curves cross; for 40MB configurations flash
   meets disk cost "by 1996" under the Intel projection the paper quotes
   (flash halving in $/MB yearly); small drives hit their mechanism-cost
   floor while big drives keep getting cheaper; DRAM density passes the
   1.3-inch disk almost immediately. *)
open Sim

let run () =
  Common.section "E2: technology trends and crossovers (Section 2)";
  let years = [ 1993.0; 1995.0; 1996.0; 1998.0; 2000.0; 2003.0 ] in
  let t =
    Table.create ~title:"$/MB for a 40MB configuration, by year"
      ~columns:
        ([ ("technology", Table.Left) ]
        @ List.map (fun y -> (Printf.sprintf "%.0f" y, Table.Right)) years)
  in
  let row name f = Table.add_row t (name :: List.map (fun y -> Table.cell_f (f y)) years) in
  row "DRAM" (fun year -> Ssmc.Trends.cost_per_mb Ssmc.Trends.Dram ~year ~capacity_mb:40.0);
  row "flash (trend 45%/yr)" (fun year ->
      Ssmc.Trends.cost_per_mb Ssmc.Trends.Flash ~year ~capacity_mb:40.0);
  row "flash (Intel projection)" (fun year ->
      Ssmc.Trends.cost_per_mb ~flash_improvement:1.0 Ssmc.Trends.Flash ~year
        ~capacity_mb:40.0);
  row "disk 40MB (w/ price floor)" (fun year ->
      Ssmc.Trends.cost_per_mb Ssmc.Trends.Disk ~year ~capacity_mb:40.0);
  row "disk 1GB" (fun year ->
      Ssmc.Trends.cost_per_mb Ssmc.Trends.Disk ~year ~capacity_mb:1000.0);
  Table.print t;

  let t2 =
    Table.create ~title:"density, MB per cubic inch"
      ~columns:
        ([ ("technology", Table.Left) ]
        @ List.map (fun y -> (Printf.sprintf "%.0f" y, Table.Right)) years)
  in
  let drow name tech =
    Table.add_row t2
      (name :: List.map (fun year -> Table.cell_f (Ssmc.Trends.density_mb_per_in3 tech ~year)) years)
  in
  drow "DRAM" Ssmc.Trends.Dram;
  drow "flash" Ssmc.Trends.Flash;
  drow "disk" Ssmc.Trends.Disk;
  Table.print t2;

  let t3 =
    Table.create ~title:"crossover years"
      ~columns:[ ("event", Table.Left); ("year", Table.Right) ]
  in
  let cross name v =
    Table.add_row t3
      [ name; (match v with Some y -> Printf.sprintf "%.1f" y | None -> "beyond 2030") ]
  in
  cross "flash $/MB meets 40MB disk (trend rates)"
    (Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Flash
       ~capacity_mb:40.0 ());
  cross "flash $/MB meets 40MB disk (Intel projection; paper says 1996)"
    (Ssmc.Trends.cost_crossover ~flash_improvement:1.0 ~cheaper:Ssmc.Trends.Disk
       ~pricier:Ssmc.Trends.Flash ~capacity_mb:40.0 ());
  cross "flash $/MB meets 1GB disk (trend rates)"
    (Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Flash
       ~capacity_mb:1000.0 ());
  cross "DRAM $/MB meets 40MB disk (trend rates)"
    (Ssmc.Trends.cost_crossover ~cheaper:Ssmc.Trends.Disk ~pricier:Ssmc.Trends.Dram
       ~capacity_mb:40.0 ());
  cross "DRAM density passes 1.3\" disk"
    (Ssmc.Trends.density_crossover ~slower:Ssmc.Trends.Disk ~faster:Ssmc.Trends.Dram);
  Table.print t3;

  let t4 =
    Table.create ~title:"MB a $1000 storage budget buys (Section 4's trade)"
      ~columns:
        [ ("year", Table.Right); ("DRAM", Table.Right); ("flash", Table.Right);
          ("disk", Table.Right) ]
  in
  List.iter
    (fun year ->
      Table.add_row t4
        [
          Printf.sprintf "%.0f" year;
          Table.cell_f (Ssmc.Trends.capacity_affordable Ssmc.Trends.Dram ~year ~budget:1000.0);
          Table.cell_f (Ssmc.Trends.capacity_affordable Ssmc.Trends.Flash ~year ~budget:1000.0);
          Table.cell_f (Ssmc.Trends.capacity_affordable Ssmc.Trends.Disk ~year ~budget:1000.0);
        ])
    years;
  Table.print t4;
  Common.note
    "1993 row reproduces Section 4's 'choose between 12MB DRAM, 20MB flash, 120MB disk'."
