(* E5 — Section 3.2: execute-in-place.
   Shape to reproduce: XIP launch is near-instant and duplicates no DRAM;
   copying text out of flash costs time proportional to the text and
   duplicates it; loading from disk is slower still; steady-state fetches
   from flash cost somewhat more than from DRAM, so heavy reuse eventually
   amortizes a copy (the crossover is in the millions of fetches). *)
open Sim

let make_machine () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(8 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(8 * Units.mib) ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 4096; swap = Vmem.Vm.No_swap }
      ~engine ~manager
  in
  (engine, manager, vm)

let settle engine manager =
  let flash = Storage.Manager.flash manager in
  let busy = ref (Engine.now engine) in
  for bank = 0 to Device.Flash.nbanks flash - 1 do
    busy := Time.max !busy (Device.Flash.bank_busy_until flash ~bank)
  done;
  Engine.run_until engine (Time.add !busy (Time.span_s 1.0))

let rec run () =
  Common.section "E5: execute-in-place vs loading programs (Section 3.2)";
  let t =
    Table.create ~title:"program launch and steady-state execution"
      ~columns:
        [
          ("text size", Table.Right);
          ("strategy", Table.Left);
          ("launch", Table.Right);
          ("text DRAM", Table.Right);
          ("per-fetch (us)", Table.Right);
        ]
  in
  let fetches = 20_000 in
  List.iter
    (fun text_kib ->
      let program =
        {
          Vmem.Exec.prog_name = Printf.sprintf "app-%dk" text_kib;
          text_bytes = text_kib * 1024;
          data_bytes = 32 * 1024;
        }
      in
      let strategies =
        [
          Vmem.Exec.Execute_in_place;
          Vmem.Exec.Copy_to_dram;
          Vmem.Exec.Load_from_disk (Device.Disk.create ~rng:(Rng.create ~seed:51) ());
        ]
      in
      List.iter
        (fun strategy ->
          let engine, manager, vm = make_machine () in
          let blocks = Vmem.Exec.install_text manager program in
          settle engine manager;
          let launched = Vmem.Exec.launch vm program ~text_blocks:blocks strategy in
          let runtime = Vmem.Exec.run vm launched ~rng:(Rng.create ~seed:52) ~fetches in
          Table.add_row t
            [
              Table.cell_bytes program.Vmem.Exec.text_bytes;
              Vmem.Exec.strategy_name strategy;
              Table.cell_span launched.Vmem.Exec.launch_latency;
              Table.cell_bytes launched.Vmem.Exec.text_dram_bytes;
              Printf.sprintf "%.2f" (Time.span_to_us runtime /. float_of_int fetches);
            ])
        strategies;
      Table.add_rule t)
    [ 64; 256; 1024 ];
  Table.print t;

  (* Break-even analysis for the largest program. *)
  let engine, manager, vm = make_machine () in
  let program =
    { Vmem.Exec.prog_name = "app-1m"; text_bytes = Units.mib; data_bytes = 32 * 1024 }
  in
  let blocks = Vmem.Exec.install_text manager program in
  settle engine manager;
  let xip = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  let copy = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Copy_to_dram in
  let per_fetch l =
    Time.span_to_us (Vmem.Exec.run vm l ~rng:(Rng.create ~seed:53) ~fetches:20_000)
    /. 20_000.0
  in
  let fx = per_fetch xip and fc = per_fetch copy in
  let launch_gap =
    Time.span_to_us copy.Vmem.Exec.launch_latency
    -. Time.span_to_us xip.Vmem.Exec.launch_latency
  in
  if fx > fc then
    Common.note
      "break-even for copying 1MB of text: ~%.0f thousand fetches (launch gap %.0fms / %.2fus per-fetch gap)"
      (launch_gap /. (fx -. fc) /. 1e3)
      (launch_gap /. 1000.0) (fx -. fc)
  else Common.note "XIP never loses at these device speeds";
  paging_table ()

(* Section 3.2's other claim: with DRAM a larger share of total storage,
   "virtual memory will be used primarily to provide protection ...
   rather than to expand capacity", "reducing the need to page or swap".
   Touch a data working set against a bounded frame pool and compare
   having enough DRAM with the two ways of paging. *)
and paging_table () =
  let t =
    Table.create ~title:"anonymous working set vs DRAM frames (4KB pages)"
      ~columns:
        [
          ("configuration", Table.Left);
          ("mean touch (us)", Table.Right);
          ("swap-outs", Table.Right);
          ("swap-ins", Table.Right);
        ]
  in
  let working_set_pages = 512 (* 2MB *) in
  let run label frames swap =
    let engine = Engine.create () in
    let flash =
      Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(8 * Units.mib) ())
    in
    let dram = Device.Dram.create ~size_bytes:(8 * Units.mib) ~battery_backed:true () in
    let manager =
      Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram
    in
    let vm =
      Vmem.Vm.create { Vmem.Vm.page_bytes = 4096; dram_frames = frames; swap } ~engine
        ~manager
    in
    let space = Vmem.Vm.new_space vm in
    let region, _ =
      Vmem.Vm.map_anon vm space ~kind:Vmem.Addr_space.Heap ~prot:Vmem.Page_table.prot_rw
        ~bytes:(working_set_pages * 4096)
    in
    let rng = Rng.create ~seed:55 in
    let lat = Stat.Summary.create () in
    for _ = 1 to 4_000 do
      let page = Rng.int rng working_set_pages in
      let addr = region.Vmem.Addr_space.base + (page * 4096) in
      let access = if Rng.bernoulli rng ~p:0.3 then `Write else `Read in
      match Vmem.Vm.touch vm space ~addr ~access () with
      | Ok span ->
        Stat.Summary.observe lat (Time.span_to_us span);
        Engine.run_until engine (Time.add (Engine.now engine) span)
      | Error _ -> ()
    done;
    let stats = Vmem.Vm.stats vm in
    Table.add_row t
      [
        label;
        Common.cell_us (Stat.Summary.mean lat);
        Table.cell_i stats.Vmem.Vm.swap_outs;
        Table.cell_i stats.Vmem.Vm.swap_ins;
      ]
  in
  run "DRAM covers the working set (the paper's machine)" 768 Vmem.Vm.No_swap;
  run "half the frames, page to flash" 256 Vmem.Vm.Swap_flash;
  run "half the frames, page to disk"
    256
    (Vmem.Vm.Swap_disk (Device.Disk.create ~rng:(Rng.create ~seed:56) ()));
  Table.print t;
  Common.note
    "when DRAM is sized for the working set, virtual memory is protection only; paging — \
     even to flash — costs orders of magnitude.";
  sharing_table ()

(* Several processes running the same flash-resident program: one text
   copy for everyone (the single-level store's sharing win) vs one DRAM
   copy each the conventional way. *)
and sharing_table () =
  let nprocs = 5 in
  let program =
    { Vmem.Exec.prog_name = "shared-app"; text_bytes = 256 * 1024; data_bytes = 32 * 1024 }
  in
  let engine, manager, vm = make_machine () in
  let blocks = Vmem.Exec.install_text manager program in
  settle engine manager;
  let first = Vmem.Exec.launch vm program ~text_blocks:blocks Vmem.Exec.Execute_in_place in
  (* The rest fork from the first: shared text, private COW data. *)
  let children =
    List.init (nprocs - 1) (fun _ -> fst (Vmem.Vm.clone_space vm first.Vmem.Exec.space))
  in
  (* Everyone runs a little and dirties a bit of private data. *)
  let rng = Rng.create ~seed:57 in
  List.iter
    (fun space ->
      for _ = 1 to 64 do
        let addr =
          first.Vmem.Exec.data.Vmem.Addr_space.base + (Rng.int rng 8 * 4096)
        in
        ignore (Vmem.Vm.touch vm space ~addr ~access:`Write ())
      done)
    (first.Vmem.Exec.space :: children);
  let stats = Vmem.Vm.stats vm in
  let t =
    Table.create
      ~title:(Printf.sprintf "%d processes of the same 256KB program" nprocs)
      ~columns:[ ("approach", Table.Left); ("text DRAM", Table.Right);
                 ("data frames", Table.Right) ]
  in
  Table.add_row t
    [
      "XIP + fork (shared text, COW data)";
      "0B";
      Table.cell_i stats.Vmem.Vm.frames_in_use;
    ];
  Table.add_row t
    [
      "conventional (a copy per process)";
      Table.cell_bytes (nprocs * program.Vmem.Exec.text_bytes);
      Printf.sprintf "%d+" (nprocs * 8);
    ];
  Table.print t;
  Common.note
    "protection stays per-process (each space has its own page table); only the frames \
     actually written are private."
