(* E4 — Section 3.1: files mapped in place from flash, copy-on-write.
   Shape to reproduce: reading a flash-resident file in place costs no DRAM
   copy and no copy latency; the conventional alternative (copy the file to
   DRAM first, then read it) pays both up front; a sparse write to a mapped
   file copies only the affected blocks into the DRAM write buffer, where
   overwrites are absorbed until the writeback delay expires. *)
open Sim

let file_bytes = 256 * Units.kib

let build () =
  let engine = Engine.create () in
  let flash =
    Device.Flash.create (Device.Flash.config ~nbanks:4 ~size_bytes:(4 * Units.mib) ())
  in
  let dram = Device.Dram.create ~size_bytes:(4 * Units.mib) ~battery_backed:true () in
  let manager = Storage.Manager.create Storage.Manager.default_config ~engine ~flash ~dram in
  let vm =
    Vmem.Vm.create
      { Vmem.Vm.page_bytes = 4096; dram_frames = 1024; swap = Vmem.Vm.No_swap }
      ~engine ~manager
  in
  let blocks =
    Array.init (file_bytes / 512) (fun _ ->
        let b = Storage.Manager.alloc manager in
        Storage.Manager.load_cold manager b;
        b)
  in
  (* Let the cold loads drain. *)
  Engine.run_until engine (Time.span_s 600.0 |> Time.add (Engine.now engine));
  Storage.Manager.reset_traffic manager;
  (engine, manager, vm, blocks)

(* Closed loop: advance the engine past each access before the next. *)
let sum_spans ~engine f n =
  let total = ref Time.span_zero in
  for i = 0 to n - 1 do
    let span = f i in
    total := Time.span_add !total span;
    Engine.run_until engine (Time.add (Engine.now engine) span)
  done;
  !total

let run () =
  Common.section "E4: map-in-place files and copy-on-write (Section 3.1)";
  let t =
    Table.create ~title:(Printf.sprintf "accessing a %s read-mostly file" (Table.cell_bytes file_bytes))
      ~columns:
        [
          ("approach", Table.Left);
          ("setup latency", Table.Right);
          ("full scan", Table.Right);
          ("DRAM copy held", Table.Right);
          ("flash traffic", Table.Right);
        ]
  in

  (* (a) Map in place, scan via the VM (4KB chunks). *)
  let engine, manager, vm, blocks = build () in
  let space = Vmem.Vm.new_space vm in
  let region, map_span =
    Vmem.Vm.map_file vm space ~kind:Vmem.Addr_space.Mapped_file
      ~prot:Vmem.Page_table.prot_r ~cow:true ~blocks ~bytes:file_bytes
  in
  let scan =
    sum_spans ~engine
      (fun i ->
        match
          Vmem.Vm.touch vm space
            ~addr:(region.Vmem.Addr_space.base + (i * 4096))
            ~access:`Read ~bytes:4096 ()
        with
        | Ok span -> span
        | Error _ -> Fmt.failwith "e4: fault")
      (file_bytes / 4096)
  in
  let stats = Storage.Manager.stats manager in
  Table.add_row t
    [
      "map in place (paper)";
      Table.cell_span map_span;
      Table.cell_span scan;
      "0B";
      Table.cell_bytes (512 * stats.Storage.Manager.blocks_flushed);
    ];

  (* (b) Conventional: copy the whole file into DRAM first. *)
  let engine2, manager2, _vm2, blocks2 = build () in
  let copy_start = Engine.now engine2 in
  let cursor = ref copy_start in
  Array.iter (fun b -> cursor := Storage.Manager.read_block_at manager2 ~at:!cursor b) blocks2;
  let dram2 = Storage.Manager.dram manager2 in
  let copy_in = Device.Dram.write dram2 ~bytes:file_bytes in
  let setup = Time.span_add (Time.diff !cursor copy_start) copy_in in
  let scan2 =
    sum_spans ~engine:engine2 (fun _ -> Device.Dram.read dram2 ~bytes:4096) (file_bytes / 4096)
  in
  Table.add_row t
    [
      "copy to DRAM first (conventional)";
      Table.cell_span setup;
      Table.cell_span scan2;
      Table.cell_bytes file_bytes;
      "0B";
    ];
  Table.print t;

  (* (c) COW behaviour: sparse writes copy only what is written. *)
  let engine3, manager3, vm3, blocks3 = build () in
  let space3 = Vmem.Vm.new_space vm3 in
  let region3, _ =
    Vmem.Vm.map_file vm3 space3 ~kind:Vmem.Addr_space.Mapped_file
      ~prot:Vmem.Page_table.prot_r ~cow:true ~blocks:blocks3 ~bytes:file_bytes
  in
  let dirty_writes = 24 in
  let wspan =
    sum_spans ~engine:engine3
      (fun i ->
        match
          Vmem.Vm.touch vm3 space3
            ~addr:(region3.Vmem.Addr_space.base + (i * 7 * 512))
            ~access:`Write ~bytes:64 ()
        with
        | Ok span -> span
        | Error _ -> Fmt.failwith "e4: cow fault")
      dirty_writes
  in
  let stats3 = Storage.Manager.stats manager3 in
  let t2 =
    Table.create ~title:"copy-on-write: sparse updates to the mapped file"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t2 [ "blocks written (64B each, 24 spots)"; Table.cell_i dirty_writes ];
  Table.add_row t2
    [ "blocks copied to the DRAM write buffer"; Table.cell_i stats3.Storage.Manager.dirty_blocks ];
  Table.add_row t2
    [ "file blocks untouched in flash";
      Table.cell_i (Array.length blocks3 - stats3.Storage.Manager.dirty_blocks) ];
  Table.add_row t2 [ "mean write latency"; Table.cell_span (Time.span_scale wspan (1.0 /. float_of_int dirty_writes)) ];
  (* Let the writeback expire and see what reaches flash. *)
  Engine.run_until engine3 (Time.add (Engine.now engine3) (Time.span_s 120.0));
  let stats3' = Storage.Manager.stats manager3 in
  Table.add_row t2
    [ "blocks reaching flash after writeback delay";
      Table.cell_i stats3'.Storage.Manager.blocks_flushed ];
  Table.print t2;
  Common.note
    "the erase/write penalty is deferred to the background; the foreground write cost is DRAM."
