(* The experiment harness: regenerates every quantitative claim in the
   paper (experiments E1-E9, see DESIGN.md and EXPERIMENTS.md), plus
   wall-clock micro-benchmarks of the simulator itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- e6 e8   # selected experiments
     QUICK=1 dune exec bench/main.exe    # shorter runs for iteration *)

let experiments =
  [
    ("e1", "Section 2 device comparison", E1_devices.run);
    ("e2", "Section 2 technology trends", E2_trends.run);
    ("e3", "Section 3.1 memory-resident FS vs disk FS", E3_filesystem.run);
    ("e4", "Section 3.1 map-in-place and copy-on-write", E4_inplace.run);
    ("e5", "Section 3.2 execute-in-place", E5_xip.run);
    ("e6", "Section 3.3 DRAM write buffering", E6_write_buffer.run);
    ("e7", "Section 3.3 cleaning and wear leveling", E7_cleaning_wear.run);
    ("e8", "Section 3.3 bank partitioning", E8_banks.run);
    ("e9", "Section 4 DRAM/flash sizing", E9_sizing.run);
    ("e10", "Section 2 storage power and battery life", E10_battery.run);
    ("micro", "simulator micro-benchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map (fun (name, _, _) -> name) experiments
  in
  let unknown =
    List.filter (fun pick -> not (List.exists (fun (n, _, _) -> n = pick) experiments))
      requested
  in
  if unknown <> [] then begin
    Fmt.epr "unknown experiment(s): %a@.known: %a@."
      Fmt.(list ~sep:sp string)
      unknown
      Fmt.(list ~sep:sp string)
      (List.map (fun (n, _, _) -> n) experiments);
    exit 2
  end;
  Fmt.pr
    "Reproduction harness for 'Operating System Implications of Solid-State Mobile \
     Computers' (HotOS-IV 1993)@.";
  if Common.quick then Fmt.pr "(QUICK mode: shortened runs)@.";
  List.iter
    (fun pick ->
      let _, _, run = List.find (fun (n, _, _) -> n = pick) experiments in
      run ())
    requested;
  Fmt.pr "@.done.@."
