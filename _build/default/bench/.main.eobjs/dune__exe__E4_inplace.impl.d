bench/e4_inplace.ml: Array Common Device Engine Fmt Printf Sim Storage Table Time Units Vmem
