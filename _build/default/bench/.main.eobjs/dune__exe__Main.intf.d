bench/main.mli:
