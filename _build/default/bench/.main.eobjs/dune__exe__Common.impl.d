bench/common.ml: Float Fmt Rng Sim Ssmc Stat Sys Table Time Trace
