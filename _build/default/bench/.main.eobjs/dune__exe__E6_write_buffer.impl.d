bench/e6_write_buffer.ml: Chart Common Float List Option Printf Rng Sim Ssmc Stat Storage Table Time Trace Units
