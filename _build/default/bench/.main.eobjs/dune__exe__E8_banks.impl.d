bench/e8_banks.ml: Array Common Device Engine List Printf Rng Sim Stat Storage Table Time Units
