bench/e7_cleaning_wear.ml: Array Common Device Distribution Engine Float List Option Printf Rng Sim Ssmc Storage Table Time Units
