bench/e2_trends.ml: Common List Printf Sim Ssmc Table
