bench/e3_filesystem.ml: Array Common Device Engine Fmt Fs List Printf Rng Sim Ssmc Stat Storage Table Time Trace Units
