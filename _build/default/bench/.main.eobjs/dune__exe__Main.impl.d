bench/main.ml: Array Common E10_battery E1_devices E2_trends E3_filesystem E4_inplace E5_xip E6_write_buffer E7_cleaning_wear E8_banks E9_sizing Fmt List Micro Sys
