bench/e10_battery.ml: Common Device Engine List Printf Sim Ssmc Storage Table Time Trace Units
