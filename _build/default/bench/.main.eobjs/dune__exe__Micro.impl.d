bench/micro.ml: Analyze Array Bechamel Benchmark Common Hashtbl Instance List Measure Option Printf Sim Staged Storage String Test Time Toolkit
