bench/e5_xip.ml: Common Device Engine List Printf Rng Sim Stat Storage Table Time Units Vmem
