bench/e1_devices.ml: Common Device List Printf Rng Sim Ssmc Stat Table Time Trace Units
