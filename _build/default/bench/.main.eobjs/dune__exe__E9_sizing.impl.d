bench/e9_sizing.ml: Chart Common Float List Printf Sim Ssmc Table Trace
